package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// monoGraph is a single-operator graph (O[i] += Q[i,k]) whose tiny rule
// surface makes resource usage predictable for the brute-force sweeps.
func monoGraph(i, k int) *workload.Graph {
	op := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "k", Size: k}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
		},
		Write: workload.Access{Tensor: "O", Index: []workload.Index{workload.I("i")}},
	}
	return workload.MustGraph("mono", workload.WordBytes, op)
}

// monoSweep drives one rule's brute-force check: mk builds the design point
// with the designated loop extent set to e, and the sweep observes for which
// extents the rule fires.
type monoSweep struct {
	rule    string
	extents []int
	mk      func(e int) (*Node, *workload.Graph, *arch.Spec)
}

// monoSweeps covers every static rule with a sweep whose designated extent
// can influence the rule if anything can. Structural rules use a broken
// sec42 tree whose defect is independent of the swept extent.
func monoSweeps() []monoSweep {
	structural := func(mut func(g *workload.Graph, root *Node) *Node) func(e int) (*Node, *workload.Graph, *arch.Spec) {
		return func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := sec42Graph(32, 64, 64, 32)
			root := mut(g, sec42Tree(g))
			root.Loops[0].Extent = e
			return root, g, arch.Cloud()
		}
	}
	small := []int{1, 2, 3, 4, 5, 6}
	return []monoSweep{
		{RuleArch, small, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := sec42Graph(32, 64, 64, 32)
			root := sec42Tree(g)
			root.Loops[0].Extent = e
			spec := arch.Cloud()
			spec.MeshX = 0
			return root, g, spec
		}},
		{RuleLeafChildren, small, structural(func(g *workload.Graph, root *Node) *Node {
			root.Children[0].Children[0].Children = []*Node{Leaf("extra", g.Op("B"))}
			return root
		})},
		{RuleDupOp, small, structural(func(g *workload.Graph, root *Node) *Node {
			root.Children[1].Children = append(root.Children[1].Children, Leaf("again", g.Op("B")))
			return root
		})},
		{RuleInteriorEmpty, small, structural(func(g *workload.Graph, root *Node) *Node {
			root.Children[1].Children = nil
			root.Children[1].Op = nil
			return root
		})},
		{RuleLevelOrder, small, structural(func(g *workload.Graph, root *Node) *Node {
			root.Children[0].Level = 3
			return root
		})},
		{RuleOpNoLeaf, small, structural(func(g *workload.Graph, root *Node) *Node {
			return Tile(root.Name, root.Level, root.Binding, root.Loops, root.Children[0])
		})},
		{RuleLevelRange, small, structural(func(g *workload.Graph, root *Node) *Node {
			root.Level = 99
			return root
		})},
		{RuleLoopDim, small, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := sec42Graph(32, 64, 64, 32)
			root := sec42Tree(g)
			root.Children[1].Loops = append(root.Children[1].Loops, T("zz", e))
			return root, g, arch.Cloud()
		}},
		{RuleLoopExtent, []int{-2, -1, 0, 1, 2, 3}, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := sec42Graph(32, 64, 64, 32)
			root := sec42Tree(g)
			root.Loops[0].Extent = e
			return root, g, arch.Cloud()
		}},
		// Coverage needs e*2 == 8: the violation set {1,2,3,5,6} is neither
		// upward- nor downward-closed — the MonoExact witness.
		{RuleCoverage, small, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := monoGraph(8, 4)
			leaf := Leaf("lf", g.Op("A"), T("i", 2), T("k", 4))
			root := Tile("r", 2, Seq, []Loop{T("i", e)}, leaf)
			return root, g, arch.Edge()
		}},
		// Edge has 4096 PEs; the spatial extent is the PE usage.
		{RulePEBudget, []int{1024, 2048, 4096, 8192, 16384}, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := monoGraph(16384, 4)
			leaf := Leaf("lf", g.Op("A"), S("i", e))
			root := Tile("r", 2, Seq, nil, leaf)
			return root, g, arch.Edge()
		}},
		// Edge has 4 L1 instances; a root spatial loop occupies e of them.
		{RuleUnitUsage, []int{1, 2, 4, 8, 16}, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := monoGraph(16384, 4)
			leaf := Leaf("lf", g.Op("A"))
			t1 := Tile("t1", 1, Seq, nil, leaf)
			root := Tile("r", 2, Seq, []Loop{S("i", e)}, t1)
			return root, g, arch.Edge()
		}},
		// Edge's L1 holds 2M words; the intermediates A and B are confined
		// at the fused L1 tile and stage e×1024-word slices there.
		{RuleCapacity, []int{128, 256, 512, 1024}, func(e int) (*Node, *workload.Graph, *arch.Spec) {
			g := sec42Graph(1024, 1024, 1024, 1024)
			t00 := Leaf("c0", g.Op("A"), T("i", e), T("l", 1024), T("k", 1024))
			t10 := Leaf("c1", g.Op("B"), T("i", e), T("l", 1024))
			t20 := Leaf("c2", g.Op("C"), T("i", e), T("j", 1024), T("l", 1024))
			t01 := Tile("c01", 1, Seq, nil, t00, t10, t20)
			root := Tile("croot", 2, Seq, nil, t01)
			return root, g, arch.Edge()
		}},
	}
}

func fires(rule string, root *Node, g *workload.Graph, spec *arch.Spec) bool {
	for _, v := range AnalyzeStatic(root, g, spec, Options{}) {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// TestRuleMonotonicityBruteForce pins every rule's declared monotonicity
// against the observed violation set over its sweep: upward-closed for
// MonoIncreasing, downward-closed for MonoDecreasing, constant for
// MonoIndependent, and provably neither for MonoExact. Increasing and
// decreasing sweeps must also witness both verdicts, so a vacuously-closed
// sweep (never fires, always fires) cannot pass.
func TestRuleMonotonicityBruteForce(t *testing.T) {
	covered := map[string]bool{}
	for _, sw := range monoSweeps() {
		covered[sw.rule] = true
		t.Run(sw.rule, func(t *testing.T) {
			hits := make([]bool, len(sw.extents))
			for i, e := range sw.extents {
				root, g, spec := sw.mk(e)
				hits[i] = fires(sw.rule, root, g, spec)
			}
			anyFire, anyClean := false, false
			upward, downward := true, true
			for i, h := range hits {
				if h {
					anyFire = true
				} else {
					anyClean = true
				}
				if i > 0 {
					if hits[i-1] && !h {
						upward = false
					}
					if !hits[i-1] && h {
						downward = false
					}
				}
			}
			switch m := RuleMonotonicity(sw.rule); m {
			case MonoIndependent:
				if anyFire && anyClean {
					t.Errorf("declared %v but verdict varies with the extent: %v", m, hits)
				}
				if !anyFire {
					t.Errorf("sweep never fires %s; the case proves nothing", sw.rule)
				}
			case MonoIncreasing:
				if !upward {
					t.Errorf("declared %v but violation set not upward-closed: %v", m, hits)
				}
				if !anyFire || !anyClean {
					t.Errorf("sweep must witness both verdicts, got %v", hits)
				}
			case MonoDecreasing:
				if !downward {
					t.Errorf("declared %v but violation set not downward-closed: %v", m, hits)
				}
				if !anyFire || !anyClean {
					t.Errorf("sweep must witness both verdicts, got %v", hits)
				}
			case MonoExact:
				if upward || downward {
					t.Errorf("declared %v but violation set is monotone: %v", m, hits)
				}
			}
		})
	}
	for _, rule := range RuleKeys() {
		if !covered[rule] {
			t.Errorf("rule %s has no monotonicity sweep", rule)
		}
	}
}

// TestRuleMonotonicityTable: the declaration table is exhaustive over the
// rule keys, stringifies, and panics on unknown rules.
func TestRuleMonotonicityTable(t *testing.T) {
	if len(RuleKeys()) != 13 {
		t.Fatalf("rule key list has %d entries, want 13", len(RuleKeys()))
	}
	seen := map[string]bool{}
	for _, rule := range RuleKeys() {
		if seen[rule] {
			t.Errorf("duplicate rule key %s", rule)
		}
		seen[rule] = true
		m := RuleMonotonicity(rule) // must not panic
		if m.String() == "unknown" {
			t.Errorf("rule %s has unprintable monotonicity %d", rule, m)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("RuleMonotonicity on an unknown rule did not panic")
		}
	}()
	RuleMonotonicity("no-such-rule")
}
