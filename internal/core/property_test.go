package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/workload"
)

// randMatmulTree builds a random-but-valid three-level matmul tree from
// bounded fuzz inputs: dimension sizes are products of the chosen factors,
// so the tiling is exact by construction.
func randMatmulTree(f [9]uint8) (*workload.Graph, *Node) {
	pick := func(x uint8) int { return int(x)%4 + 1 } // 1..4
	am, bm, sm := pick(f[0]), pick(f[1]), pick(f[2])
	an, bn, sn := pick(f[3]), pick(f[4]), pick(f[5])
	ak, bk, ck := pick(f[6]), pick(f[7]), pick(f[8])
	m, n, k := am*bm*sm, an*bn*sn, ak*bk*ck
	g := workload.Matmul(m, n, k)
	op := g.Ops[0]
	leaf := Leaf("leaf", op, S("m", sm), S("n", sn), T("k", ck))
	l1 := Tile("l1", 1, Seq, []Loop{T("m", bm), T("n", bn), T("k", bk)}, leaf)
	root := Tile("root", 2, Seq, []Loop{T("m", am), T("n", an), T("k", ak)}, l1)
	return g, root
}

// TestPropertyDMNonNegativeAndBounded: for every random mapping, all
// per-level data movement is non-negative and DRAM reads of each input are
// at least the tensor volume (compulsory traffic) and at most volume times
// the total trip count (full refetch bound).
func TestPropertyDMNonNegativeAndBounded(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [9]uint8) bool {
		g, root := randMatmulTree(f)
		res, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		for _, dm := range res.DM {
			if dm.Fill < 0 || dm.Read < 0 || dm.Update < 0 {
				return false
			}
		}
		trips := 1.0
		root.Walk(func(n *Node) { trips *= float64(n.TemporalTrips()) })
		for _, tensor := range []string{"A", "B"} {
			vol := float64(g.Tensors[tensor].Volume())
			reads := res.TensorDM[tensor][2].Read
			if reads < vol-0.5 || reads > vol*trips+0.5 {
				return false
			}
		}
		// The output must drain exactly its volume times the reduction
		// trips above its buffer.
		return res.TensorDM["C"][2].Update >= float64(g.Tensors["C"].Volume())-0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLatencyBounds: modeled latency respects the compute bound
// (ops / PEs used) and never drops below the compute-only latency.
func TestPropertyLatencyBounds(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [9]uint8) bool {
		g, root := randMatmulTree(f)
		res, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		if res.Cycles < res.ComputeCycles-1e-9 {
			return false
		}
		peBound := res.MACs / float64(res.TotalPEs*spec.MACsPerPE)
		return res.Cycles >= peBound-1e-9 && !math.IsNaN(res.Cycles) && !math.IsInf(res.Cycles, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDMScalesWithWork: doubling the k extent (more reduction
// work) never decreases total DRAM traffic or latency.
func TestPropertyDMScalesWithWork(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [9]uint8) bool {
		g1, root1 := randMatmulTree(f)
		// Rebuild the same mapping with the leaf k extent doubled.
		pick := func(x uint8) int { return int(x)%4 + 1 }
		am, bm, sm := pick(f[0]), pick(f[1]), pick(f[2])
		an, bn, sn := pick(f[3]), pick(f[4]), pick(f[5])
		ak, bk, ck := pick(f[6]), pick(f[7]), pick(f[8])*2
		g2 := workload.Matmul(am*bm*sm, an*bn*sn, ak*bk*ck)
		leaf := Leaf("leaf", g2.Ops[0], S("m", sm), S("n", sn), T("k", ck))
		l1 := Tile("l1", 1, Seq, []Loop{T("m", bm), T("n", bn), T("k", bk)}, leaf)
		root2 := Tile("root", 2, Seq, []Loop{T("m", am), T("n", an), T("k", ak)}, l1)

		r1, err := Evaluate(root1, g1, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		r2, err := Evaluate(root2, g2, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		return r2.DRAMTraffic() >= r1.DRAMTraffic()-0.5 && r2.Cycles >= r1.Cycles-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertySliceExtentsPositive: slice extents are ≥ 1 for arbitrary
// loop assignments, and slice volume equals the product of extents.
func TestPropertySliceExtentsPositive(t *testing.T) {
	g := workload.BatchedConv1D()
	op := g.Ops[0]
	prop := func(ti, tj, tk, si, sj uint8) bool {
		e := func(x uint8) int { return int(x)%6 + 1 }
		leaf := Leaf("tile", op,
			T("i", e(ti)), T("j", e(tj)), T("k", e(tk)),
			S("i", e(si)), S("j", e(sj)),
		)
		tr, err := buildTree(leaf)
		if err != nil {
			return false
		}
		ev := &evaluator{t: tr, s: &Scratch{}}
		for _, acc := range op.Accesses() {
			exts := tr.sliceExtentsInto(make([]int64, len(acc.Index)), 0, 0, acc)
			vol := int64(1)
			for _, x := range exts {
				if x < 1 {
					return false
				}
				vol *= x
			}
			if vol != tr.sliceVolume(0, 0, acc) {
				return false
			}
			// Per-exec DM is at least the compulsory slice and at most
			// slice × temporal trips.
			dm := ev.perExecDM(0, 0, acc, false)
			if dm < float64(vol)-0.5 {
				return false
			}
			if dm > float64(vol)*float64(leaf.TemporalTrips())+0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEvaluateDeterministic: evaluation is a pure function of its
// inputs.
func TestPropertyEvaluateDeterministic(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [9]uint8) bool {
		g, root := randMatmulTree(f)
		r1, err1 := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
		r2, err2 := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Cycles == r2.Cycles && r1.DRAMTraffic() == r2.DRAMTraffic() &&
			r1.EnergyPJ() == r2.EnergyPJ() && r1.PEsUsed == r2.PEsUsed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCloneEquivalence: a cloned tree evaluates identically and
// mutating the clone does not affect the original.
func TestPropertyCloneEquivalence(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [9]uint8) bool {
		g, root := randMatmulTree(f)
		clone := root.Clone()
		r1, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return true
		}
		r2, err := Evaluate(clone, g, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		if r1.Cycles != r2.Cycles {
			return false
		}
		// Mutate the clone; the original must be unchanged.
		clone.Loops = append(clone.Loops, T("m", 1))
		r3, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
		return err == nil && r3.Cycles == r1.Cycles
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randConvChainTree builds a random-but-valid fused conv-chain tree: two
// chained convolutions sharing h/w/l tiling under a fusion node whose
// binding is drawn from the fuzz input. Dim sizes are products of the
// chosen factors, so the tiling is exact by construction.
func randConvChainTree(f [8]uint8) (*workload.Graph, *Node) {
	pick := func(x uint8, mod int) int { return int(x)%mod + 1 }
	ah, bh := pick(f[0], 3), pick(f[1], 3)
	aw, bw := pick(f[2], 3), pick(f[3], 3)
	al, bl := pick(f[4], 3), pick(f[5], 2)
	filter := pick(f[6], 2)
	inC := pick(f[7], 3)
	outC2 := pick(f[6]>>2, 4)
	g := workload.ConvChain(workload.ConvChainShape{
		Name: "prop", InC: inC,
		Height: ah * bh, Width: aw * bw,
		OutC1: al * bl, OutC2: outC2, Filter: filter,
	})
	binding := Binding(int(f[0]>>2) % 4)
	leaf1 := Leaf("c1", g.Ops[0],
		T("h", bh), T("w", bw), T("l", bl),
		T("r", filter), T("s", filter), T("c", inC))
	leaf2 := Leaf("c2", g.Ops[1],
		T("h", bh), T("w", bw), T("l", bl),
		T("e", outC2), T("u", filter), T("v", filter))
	fused := Tile("fused", 1, binding, []Loop{T("l", al)}, leaf1, leaf2)
	root := Tile("root", 2, Seq, []Loop{T("h", ah), T("w", aw)}, fused)
	return g, root
}

// randAttentionCoarseTree builds a random-but-valid fused 3-op attention
// tree (QK → Softmax → LV) with the sequence dim factored differently
// between the m and l tilings.
func randAttentionCoarseTree(f [6]uint8) (*workload.Graph, *Node) {
	pick := func(u uint8, mod int) int { return int(u)%mod + 1 }
	x, y, z := pick(f[0], 3), pick(f[1], 3), pick(f[2], 2)
	heads := pick(f[3], 2)
	headDim := 2 * pick(f[4], 2)
	seq := x * y * z
	g := workload.AttentionCoarse(workload.AttentionShape{
		Name: "prop", Heads: heads, SeqLen: seq,
		Hidden: heads * headDim, Batch: 1,
	})
	binding := Binding(int(f[5]) % 4)
	leafQK := Leaf("qk", g.Ops[0], T("m", y*z), T("l", z), T("k", headDim))
	leafSM := Leaf("sm", g.Ops[1], T("m", y*z), T("l", z))
	leafLV := Leaf("lv", g.Ops[2], T("m", y*z), T("l", z), T("n", headDim))
	fused := Tile("fused", 1, binding, []Loop{T("l", x*y)}, leafQK, leafSM, leafLV)
	root := Tile("root", 2, Seq, []Loop{T("h", heads), T("m", x)}, fused)
	return g, root
}

// TestPropertyConvChainDMBounds: the matmul non-negativity, compulsory-
// traffic and refetch bounds hold on fused conv chains — including the
// halo'd input — under all four inter-tile bindings.
func TestPropertyConvChainDMBounds(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [8]uint8) bool {
		g, root := randConvChainTree(f)
		res, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true, SkipPECheck: true})
		if err != nil {
			return false
		}
		for _, dm := range res.DM {
			if dm.Fill < 0 || dm.Read < 0 || dm.Update < 0 {
				return false
			}
		}
		trips := 1.0
		root.Walk(func(n *Node) { trips *= float64(n.TemporalTrips()) })
		for _, tensor := range []string{"Im", "W1", "W2"} {
			vol := float64(g.Tensors[tensor].Volume())
			reads := res.TensorDM[tensor][2].Read
			if reads < vol-0.5 || reads > vol*trips+0.5 {
				return false
			}
		}
		if res.TensorDM["Out"][2].Update < float64(g.Tensors["Out"].Volume())-0.5 {
			return false
		}
		return res.Cycles >= res.ComputeCycles-1e-9 &&
			!math.IsNaN(res.Cycles) && !math.IsInf(res.Cycles, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAttentionDMBounds: the same invariants on fused 3-op
// attention trees, whose intermediate tensors (S, L) are confined to the
// fusion node and must not leak compulsory DRAM traffic checks.
func TestPropertyAttentionDMBounds(t *testing.T) {
	spec := arch.Edge()
	prop := func(f [6]uint8) bool {
		g, root := randAttentionCoarseTree(f)
		res, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true, SkipPECheck: true})
		if err != nil {
			return false
		}
		for _, dm := range res.DM {
			if dm.Fill < 0 || dm.Read < 0 || dm.Update < 0 {
				return false
			}
		}
		trips := 1.0
		root.Walk(func(n *Node) { trips *= float64(n.TemporalTrips()) })
		for _, tensor := range []string{"Q", "K", "V"} {
			vol := float64(g.Tensors[tensor].Volume())
			reads := res.TensorDM[tensor][2].Read
			if reads < vol-0.5 || reads > vol*trips+0.5 {
				return false
			}
		}
		if res.TensorDM["A"][2].Update < float64(g.Tensors["A"].Volume())-0.5 {
			return false
		}
		return res.Cycles >= res.ComputeCycles-1e-9 &&
			!math.IsNaN(res.Cycles) && !math.IsInf(res.Cycles, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
