package core

import "context"

// DeltaState carries everything EvaluateDelta needs to re-evaluate a
// perturbed tiling incrementally: a dedicated scratch arena whose rows
// persist between calls, a per-node snapshot of the loop nests the cached
// state was computed under, and the cached per-(node, group) boundary
// volumes of the data-movement pass.
//
// The invalidation rule follows from what each cached quantity reads. A
// node's boundary volumes are a pure function of the loop nests in its
// subtree (slice shapes, trip counts, retention) and at its ancestors
// (invocation counts); its footprint row reads only the subtree. So a
// tiling diff marks nodes whose own loops changed (dirty), folds that up
// (dirtySub) and down (dirtyUp) the tree, recomputes affected = dirtySub ∪
// dirtyUp nodes, and replays the cached float64 volumes for the rest in
// the full pass's exact accumulation order — making the delta route
// bit-identical to a cold evaluation (pinned by the conformance
// differentials).
//
// A DeltaState belongs to one Program family and one goroutine at a time.
type DeltaState struct {
	p    *Program
	opts Options
	s    *Scratch

	// valid marks the caches as consistent with the loops snapshot. Any
	// run poisons it on entry and blesses it only once every cached phase
	// has been brought up to date (capacity-infeasible runs included:
	// the capacity check fires after both cached phases complete).
	valid bool

	// loops is the per-node tiling snapshot the caches were computed
	// under; backing arrays are reused across snapshots.
	loops [][]Loop

	// tf/tu cache each (node, group) fill/update volume; fills/updates
	// cache the per-node sums.
	tf, tu         [][]float64
	fills, updates []float64

	// Diff masks, recomputed each call.
	dirty    []bool
	dirtySub []bool
	dirtyUp  []bool
	affected []bool
	fpNeed   []bool
}

// NewDelta creates a delta-evaluation state for the Program's structure
// with the given options fixed. The first EvaluateDelta call runs a full
// evaluation that primes the caches; later calls pay only for the parts of
// the tree whose loop nests changed.
func (p *Program) NewDelta(opts Options) *DeltaState {
	n := len(p.t.nodeSet)
	d := &DeltaState{
		p:        p,
		opts:     opts,
		s:        p.NewScratch(),
		loops:    make([][]Loop, n),
		tf:       make([][]float64, n),
		tu:       make([][]float64, n),
		fills:    make([]float64, n),
		updates:  make([]float64, n),
		dirty:    make([]bool, n),
		dirtySub: make([]bool, n),
		dirtyUp:  make([]bool, n),
		affected: make([]bool, n),
		fpNeed:   make([]bool, n),
	}
	for i := range p.t.nodeSet {
		if g := len(p.t.st.groups[i]); g > 0 {
			d.tf[i] = make([]float64, g)
			d.tu[i] = make([]float64, g)
		}
	}
	return d
}

// EvaluateDelta evaluates a tiling of the Program's structure, reusing the
// DeltaState's caches for every node whose analysis inputs are unchanged
// since the previous call. Results are bit-identical to Program.Evaluate
// on the same tree. The returned Result aliases the state's arena and is
// valid only until the next call; use Result.Clone to keep one.
//
// Options other than the state's poison the caches and force a full
// recompute, as does any error that interrupts the pipeline before the
// cached phases complete (capacity errors do not: they fire last).
func (p *Program) EvaluateDelta(ctx context.Context, d *DeltaState, root *Node, opts Options) (*Result, error) {
	if opts != d.opts {
		d.opts = opts
		d.valid = false
	}
	t := &d.s.view
	if err := p.t.rebindInto(t, root); err != nil {
		return nil, err
	}
	e := &evaluator{ctx: ctx, p: p, t: t, opts: d.opts, s: d.s, delta: d}
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	if d.valid {
		d.diff(t)
		e.affected = d.affected
		e.fpNeed = d.fpNeed
		e.vDirty = d.dirty
		e.vDirtyUp = d.dirtyUp
	}
	d.valid = false
	res, err := e.run()
	if err != nil && !IsOOM(err) {
		return nil, err
	}
	// Success, or capacity-infeasible: both cached phases (data movement
	// and footprint rows) completed for this tiling, so the caches are
	// consistent with it.
	d.snapshot(t, e.affected == nil)
	d.valid = true
	return res, err
}

// diff computes the per-node dirty masks of the new tiling against the
// snapshot.
func (d *DeltaState) diff(t *tree) {
	n := len(t.nodeSet)
	for i := 0; i < n; i++ {
		d.dirty[i] = !loopsEqual(t.nodeSet[i].Loops, d.loops[i])
	}
	for i := n - 1; i >= 0; i-- {
		ds := d.dirty[i]
		if !ds {
			for _, c := range t.st.children[i] {
				if d.dirtySub[c] {
					ds = true
					break
				}
			}
		}
		d.dirtySub[i] = ds
	}
	for i := 0; i < n; i++ {
		p := t.st.parent[i]
		d.dirtyUp[i] = p >= 0 && (d.dirty[p] || d.dirtyUp[p])
	}
	for i := 0; i < n; i++ {
		d.affected[i] = d.dirtySub[i] || d.dirtyUp[i]
		d.fpNeed[i] = d.dirtySub[i]
	}
}

// snapshot records the tiling the caches now reflect. On a full run every
// node is recorded; on a delta run only the dirty nodes changed.
func (d *DeltaState) snapshot(t *tree, all bool) {
	for i, n := range t.nodeSet {
		if all || d.dirty[i] {
			d.loops[i] = append(d.loops[i][:0], n.Loops...)
		}
	}
}

func loopsEqual(a, b []Loop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the Result out of whatever arena it aliases, for
// callers of EvaluateInto/EvaluateDelta/EvaluateBatch that keep a result
// beyond the arena's next use.
func (r *Result) Clone() *Result { return cloneResult(r) }
