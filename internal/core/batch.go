package core

import "context"

// EvaluateBatch evaluates many tilings of the Program's structure in one
// call, amortizing the per-evaluation setup: one pooled scratch arena
// serves every candidate, and each tiling is re-bound into a reusable tree
// view instead of allocating per-candidate state. results[i] and errs[i]
// mirror tilings[i]; each returned Result is an independent copy. Every
// item runs the exact same pipeline as Program.Evaluate, so per-item
// outputs are bit-identical to the cold route (pinned by the conformance
// differentials).
//
// Cancellation is checked between items: once ctx is done, the remaining
// items fail with ctx.Err() without being evaluated.
func (p *Program) EvaluateBatch(ctx context.Context, tilings []*Node, opts Options) ([]*Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(tilings))
	errs := make([]error, len(tilings))
	s := p.getScratch()
	defer p.putScratch(s)
	for i, root := range tilings {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		if root == nil {
			errs[i] = invalidf("core: nil tiling at batch index %d", i)
			continue
		}
		t := &s.view
		if root == p.root {
			t = p.t
		} else if err := p.t.rebindInto(t, root); err != nil {
			errs[i] = err
			continue
		}
		res, err := p.evaluateInto(ctx, s, t, opts)
		if err != nil {
			errs[i] = err
			continue
		}
		results[i] = cloneResult(res)
	}
	return results, errs
}
