package core_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestEvaluateDeltaMatchesCold walks a 120-step seeded perturbation chain
// through EvaluateDelta (each step differs from the previous by one factor,
// the case the delta cache is built for) and pins every step — feasible and
// capacity-infeasible alike — bit-identical to the cold route.
func TestEvaluateDeltaMatchesCold(t *testing.T) {
	df, tilings := perturbedFactorWalk(t, 1103, 120)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.NewDelta(core.Options{})
	okCount, oomCount := 0, 0
	for i, cand := range tilings {
		cold, coldErr := core.Evaluate(cand, df.Graph(), spec, core.Options{})
		res, errD := prog.EvaluateDelta(context.Background(), d, cand, core.Options{})
		if (coldErr == nil) != (errD == nil) {
			t.Fatalf("step %d: cold err %v, delta err %v", i, coldErr, errD)
		}
		if coldErr != nil {
			if coldErr.Error() != errD.Error() {
				t.Fatalf("step %d: cold err %q, delta err %q", i, coldErr, errD)
			}
			if core.IsOOM(coldErr) {
				oomCount++
			}
			continue
		}
		okCount++
		assertResultsIdentical(t, fmt.Sprintf("delta step %d", i), cold, res)
	}
	if okCount == 0 {
		t.Fatal("no feasible points in the chain; test exercised nothing")
	}
	t.Logf("delta matched cold on %d feasible / %d OOM / %d other-error steps",
		okCount, oomCount, len(tilings)-okCount-oomCount)
}

// TestEvaluateDeltaRepeatedTiling: evaluating the same tree twice through
// the delta state (zero dirty nodes, full replay) still matches cold.
func TestEvaluateDeltaRepeatedTiling(t *testing.T) {
	df, tilings := perturbedFactorWalk(t, 7, 5)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.NewDelta(core.Options{})
	for i, cand := range tilings {
		cold, coldErr := core.Evaluate(cand, df.Graph(), spec, core.Options{})
		for rep := 0; rep < 3; rep++ {
			res, errD := prog.EvaluateDelta(context.Background(), d, cand, core.Options{})
			if (coldErr == nil) != (errD == nil) {
				t.Fatalf("step %d rep %d: cold err %v, delta err %v", i, rep, coldErr, errD)
			}
			if coldErr != nil {
				continue
			}
			assertResultsIdentical(t, fmt.Sprintf("step %d rep %d", i, rep), cold, res)
		}
	}
}

// TestEvaluateDeltaOptionsChange: switching Options mid-chain poisons the
// caches and the state recovers with results identical to cold under the
// new options.
func TestEvaluateDeltaOptionsChange(t *testing.T) {
	df, tilings := perturbedFactorWalk(t, 51, 40)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.NewDelta(core.Options{})
	for i, cand := range tilings {
		opts := core.Options{}
		if i%3 == 2 {
			opts = core.Options{SkipCapacityCheck: true}
		}
		cold, coldErr := core.Evaluate(cand, df.Graph(), spec, opts)
		res, errD := prog.EvaluateDelta(context.Background(), d, cand, opts)
		if (coldErr == nil) != (errD == nil) {
			t.Fatalf("step %d: cold err %v, delta err %v", i, coldErr, errD)
		}
		if coldErr != nil {
			if coldErr.Error() != errD.Error() {
				t.Fatalf("step %d: cold err %q, delta err %q", i, coldErr, errD)
			}
			continue
		}
		assertResultsIdentical(t, fmt.Sprintf("opts step %d", i), cold, res)
	}
}

// TestEvaluateDeltaInvalidRecovery: an invalid tiling (wrong dim coverage)
// errors out of the pipeline before the cached phases complete, poisoning
// the caches; the next valid tilings must still match cold exactly.
func TestEvaluateDeltaInvalidRecovery(t *testing.T) {
	df, tilings := perturbedFactorWalk(t, 99, 20)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.NewDelta(core.Options{})
	// Prime the caches on a valid point.
	if _, err := prog.EvaluateDelta(context.Background(), d, tilings[0], core.Options{}); err != nil && !core.IsOOM(err) {
		t.Fatalf("prime: %v", err)
	}
	// Corrupt one leaf loop in place so a dim's coverage no longer matches
	// the operator's size, run it, then restore.
	var leaf *core.Node
	var stack []*core.Node
	stack = append(stack, tilings[1])
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.IsLeaf() && len(n.Loops) > 0 {
			leaf = n
			break
		}
		stack = append(stack, n.Children...)
	}
	if leaf == nil {
		t.Fatal("no leaf with loops found")
	}
	saved := leaf.Loops[0]
	leaf.Loops[0].Extent = saved.Extent * 13
	if _, err := prog.EvaluateDelta(context.Background(), d, tilings[1], core.Options{}); err == nil {
		t.Fatal("corrupted tiling evaluated without error")
	}
	leaf.Loops[0] = saved
	// Every subsequent point must still be bit-identical to cold.
	for i, cand := range tilings[1:] {
		cold, coldErr := core.Evaluate(cand, df.Graph(), spec, core.Options{})
		res, errD := prog.EvaluateDelta(context.Background(), d, cand, core.Options{})
		if (coldErr == nil) != (errD == nil) {
			t.Fatalf("recovery step %d: cold err %v, delta err %v", i, coldErr, errD)
		}
		if coldErr != nil {
			continue
		}
		assertResultsIdentical(t, fmt.Sprintf("recovery step %d", i), cold, res)
	}
}

// TestEvaluateDeltaResultClone: the returned Result aliases the state's
// arena; Clone detaches it.
func TestEvaluateDeltaResultClone(t *testing.T) {
	_, tilings := perturbedFactorWalk(t, 3, 30)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.NewDelta(core.Options{})
	var first *core.Result
	var firstCycles float64
	for _, cand := range tilings {
		res, errD := prog.EvaluateDelta(context.Background(), d, cand, core.Options{})
		if errD != nil {
			continue
		}
		if first == nil {
			first = res.Clone()
			firstCycles = res.Cycles
		}
	}
	if first == nil {
		t.Skip("no feasible point in chain")
	}
	if first.Cycles != firstCycles {
		t.Fatalf("cloned result mutated: %v vs %v", first.Cycles, firstCycles)
	}
}
