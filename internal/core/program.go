package core

import (
	"context"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/workload"
)

// compileCount counts Compile calls process-wide. The static pass promises
// to allocate no Program; the conformance differential test pins that
// promise by asserting the counter does not move across AnalyzeStatic and
// QuickReject calls.
var compileCount atomic.Int64

// CompileCount returns the number of Compile calls made by this process.
func CompileCount() int64 { return compileCount.Load() }

// Program is a compiled analysis tree: the output of the Compile half of
// the Compile → Evaluate pipeline. It owns every result of the
// tiling-independent work — structural validation, the node index and
// subtree interval tables, per-tensor access groups with their invocation
// closures, confinement LCAs, operator counts and the energy table — and
// is immutable after Compile returns, so one Program may serve any number
// of concurrent Evaluate calls.
//
// A Program is bound to one tree (its Root). To evaluate a different
// tiling of the same structure, WithTiling re-binds the compiled tables to
// a new root in one cheap tree walk instead of recompiling.
type Program struct {
	root *Node
	g    *workload.Graph
	spec *arch.Spec
	t    *tree

	// confine maps each confined intermediate tensor to the pre-order id
	// of its LCA node (Sec 5.1.2): its traffic never crosses that node's
	// upper boundary.
	confine map[string]int
	// confRel is the per-(node, group) confinement relation derived from
	// confine — the form the evaluator's hot loops consume.
	confRel [][]confRel
	// pLevel is the memory level each node loads from across its upper
	// boundary, or -1 when no boundary exists (root at DRAM, or a child
	// sharing its parent's buffer).
	pLevel []int
	// attributed lists the tensors the structure can ever attribute
	// boundary traffic to, in first-attribution order. It fixes the
	// TensorDM key set, letting the scratch arena preallocate the rows.
	attributed []string
	// maxIndexDims is the widest access index across the graph's
	// operators, sizing the per-access scratch vectors.
	maxIndexDims int
	// density holds the effective density of each non-dense tensor;
	// dense tensors are absent.
	density map[string]float64
	// opDensity is the per-leaf gating density (Graph.OpDensity of the
	// leaf's operator), indexed by pre-order node id; 1.0 elsewhere.
	opDensity []float64
	macs      float64
	vops      float64
	etab      *energy.Table

	// pool shares scratch arenas across this Program and its WithTiling
	// copies; it lives behind a pointer so Program stays copyable.
	pool *scratchPool
}

// Compile runs the tiling-independent half of TileFlow's analysis once:
// architecture validation, tree indexing (pre-order ids, parent links,
// subtree intervals), structural mapping legality, per-tensor access
// grouping with Seq-eviction and invocation-dimension closures,
// confinement LCAs, workload op counts and the energy table. The returned
// Program is immutable and safe for concurrent use; its Evaluate method
// performs only the tiling-dependent work.
func Compile(root *Node, g *workload.Graph, spec *arch.Spec) (*Program, error) {
	compileCount.Add(1)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t, err := buildTree(root)
	if err != nil {
		return nil, err
	}
	if err := validateStructure(t, g, spec); err != nil {
		return nil, err
	}
	confine := t.confinements(g)
	opDensity := make([]float64, len(t.nodeSet))
	for i, n := range t.nodeSet {
		opDensity[i] = 1
		if n.IsLeaf() {
			opDensity[i] = g.OpDensity(n.Op)
		}
	}
	p := &Program{
		root:      root,
		g:         g,
		spec:      spec,
		t:         t,
		confine:   confine,
		confRel:   confRelTable(t, confine),
		density:   densityOf(g),
		opDensity: opDensity,
		macs:      macOps(g),
		vops:      vectorOps(g),
		etab:      energy.TableFor(spec),
		pool:      &scratchPool{},
	}
	p.pLevel = make([]int, len(t.nodeSet))
	for i := range t.nodeSet {
		p.pLevel[i] = parentLevelOf(t, spec, i)
	}
	// The tensors the data-movement pass can attribute traffic to are a
	// pure function of the structure: walk (node, group) pairs in the
	// exact order accountDataMovement does and collect first uses.
	seen := map[string]bool{}
	for i := range t.nodeSet {
		if p.pLevel[i] < 0 {
			continue
		}
		for gi := range t.st.groups[i] {
			if p.confRel[i][gi] != confNone {
				continue
			}
			tensor := t.st.groups[i][gi].tensor
			if !seen[tensor] {
				seen[tensor] = true
				p.attributed = append(p.attributed, tensor)
			}
		}
	}
	// Stamp every group with its tensor's index into the attributed list
	// (or -1), so the evaluator addresses the arena's flat per-tensor rows
	// without hashing the name. The structure is owned by this Compile and
	// shared read-only afterwards, so stamping here is safe.
	tidOf := make(map[string]int, len(p.attributed))
	for i, tensor := range p.attributed {
		tidOf[tensor] = i
	}
	for i := range t.st.groups {
		for gi := range t.st.groups[i] {
			g := &t.st.groups[i][gi]
			if id, ok := tidOf[g.tensor]; ok {
				g.tensorID = id
			}
		}
	}
	for _, op := range g.Ops {
		for _, r := range op.Reads {
			if len(r.Index) > p.maxIndexDims {
				p.maxIndexDims = len(r.Index)
			}
		}
		if len(op.Write.Index) > p.maxIndexDims {
			p.maxIndexDims = len(op.Write.Index)
		}
	}
	return p, nil
}

// parentLevelOf reports the memory level node i loads from across its
// upper boundary, or -1 when no boundary exists. A root tile below the
// DRAM level has an implicit DRAM parent (the paper's trees end at the
// outermost on-chip level; off-chip memory is always above them). A child
// at its parent's own level shares the buffer: no boundary.
func parentLevelOf(t *tree, spec *arch.Spec, i int) int {
	p := t.st.parent[i]
	if p < 0 {
		if t.nodeSet[i].Level < spec.DRAMLevel() {
			return spec.DRAMLevel()
		}
		return -1
	}
	if t.nodeSet[p].Level == t.nodeSet[i].Level {
		return -1
	}
	return t.nodeSet[p].Level
}

// Root returns the tree the Program is bound to.
func (p *Program) Root() *Node { return p.root }

// Graph returns the workload graph the Program was compiled against.
func (p *Program) Graph() *workload.Graph { return p.g }

// Spec returns the architecture the Program was compiled against.
func (p *Program) Spec() *arch.Spec { return p.spec }

// Signature returns the tree's structure signature (StructureSignature of
// the root): the canonical key under which the Program may be cached and
// re-bound to other tilings.
func (p *Program) Signature() string { return StructureSignature(p.root) }

// Evaluate runs the tiling-dependent half of the analysis on the
// Program's bound tree: loop-nest validation, data movement, resource and
// capacity checks, latency, energy and bandwidth. The heavy lifting runs
// on a pooled scratch arena; the returned Result is an independent copy,
// so concurrent calls on one Program are safe.
func (p *Program) Evaluate(ctx context.Context, opts Options) (*Result, error) {
	s := p.getScratch()
	defer p.putScratch(s)
	res, err := p.EvaluateInto(ctx, s, opts)
	if err != nil {
		return nil, err
	}
	return cloneResult(res), nil
}

// EvaluateInto is Evaluate running entirely inside the caller-owned
// scratch arena: the returned Result aliases the arena and is valid only
// until its next use. Steady-state calls perform zero heap allocations —
// this is the throughput primitive under EvaluateBatch and the mappers.
// The arena must come from this Program family's NewScratch.
func (p *Program) EvaluateInto(ctx context.Context, s *Scratch, opts Options) (*Result, error) {
	return p.evaluateInto(ctx, s, p.t, opts)
}

// evaluateInto runs the analysis for an explicit tree view (the batch path
// re-binds s.view per candidate and passes it here).
func (p *Program) evaluateInto(ctx context.Context, s *Scratch, t *tree, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &evaluator{ctx: ctx, p: p, t: t, opts: opts, s: s}
	return e.run()
}

// WithTiling re-binds the compiled Program to a new root carrying a
// different tiling of the same structure: same tree shape, levels,
// sibling bindings and operators (matched by identity, or by name when
// the root was built over a canonically equal copy of the graph), with
// loop nests free to differ. The re-bind is one tree walk sharing every
// compile-time table with the receiver — a handful of allocations.
// Returns ErrInvalidMapping when the new root's structure does not match.
func (p *Program) WithTiling(root *Node) (*Program, error) {
	if root == p.root {
		return p, nil
	}
	nt, err := p.t.rebind(root)
	if err != nil {
		return nil, err
	}
	np := *p
	np.root = root
	np.t = nt
	return &np, nil
}
