package core

import (
	"context"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/workload"
)

// compileCount counts Compile calls process-wide. The static pass promises
// to allocate no Program; the conformance differential test pins that
// promise by asserting the counter does not move across AnalyzeStatic and
// QuickReject calls.
var compileCount atomic.Int64

// CompileCount returns the number of Compile calls made by this process.
func CompileCount() int64 { return compileCount.Load() }

// Program is a compiled analysis tree: the output of the Compile half of
// the Compile → Evaluate pipeline. It owns every result of the
// tiling-independent work — structural validation, the node index and
// subtree interval tables, per-tensor access groups with their invocation
// closures, confinement LCAs, operator counts and the energy table — and
// is immutable after Compile returns, so one Program may serve any number
// of concurrent Evaluate calls.
//
// A Program is bound to one tree (its Root). To evaluate a different
// tiling of the same structure, WithTiling re-binds the compiled tables to
// a new root in one cheap tree walk instead of recompiling.
type Program struct {
	root *Node
	g    *workload.Graph
	spec *arch.Spec
	t    *tree

	// confine maps each confined intermediate tensor to the pre-order id
	// of its LCA node (Sec 5.1.2): its traffic never crosses that node's
	// upper boundary.
	confine map[string]int
	// density holds the effective density of each non-dense tensor;
	// dense tensors are absent.
	density map[string]float64
	// opDensity is the per-leaf gating density (Graph.OpDensity of the
	// leaf's operator), indexed by pre-order node id; 1.0 elsewhere.
	opDensity []float64
	macs      float64
	vops      float64
	etab      *energy.Table
}

// Compile runs the tiling-independent half of TileFlow's analysis once:
// architecture validation, tree indexing (pre-order ids, parent links,
// subtree intervals), structural mapping legality, per-tensor access
// grouping with Seq-eviction and invocation-dimension closures,
// confinement LCAs, workload op counts and the energy table. The returned
// Program is immutable and safe for concurrent use; its Evaluate method
// performs only the tiling-dependent work.
func Compile(root *Node, g *workload.Graph, spec *arch.Spec) (*Program, error) {
	compileCount.Add(1)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t, err := buildTree(root)
	if err != nil {
		return nil, err
	}
	if err := validateStructure(t, g, spec); err != nil {
		return nil, err
	}
	conf := t.confinements(g)
	confine := make(map[string]int, len(conf))
	for tensor, n := range conf {
		confine[tensor] = t.id[n]
	}
	opDensity := make([]float64, len(t.nodeSet))
	for i, n := range t.nodeSet {
		opDensity[i] = 1
		if n.IsLeaf() {
			opDensity[i] = g.OpDensity(n.Op)
		}
	}
	return &Program{
		root:      root,
		g:         g,
		spec:      spec,
		t:         t,
		confine:   confine,
		density:   densityOf(g),
		opDensity: opDensity,
		macs:      macOps(g),
		vops:      vectorOps(g),
		etab:      energy.TableFor(spec),
	}, nil
}

// Root returns the tree the Program is bound to.
func (p *Program) Root() *Node { return p.root }

// Graph returns the workload graph the Program was compiled against.
func (p *Program) Graph() *workload.Graph { return p.g }

// Spec returns the architecture the Program was compiled against.
func (p *Program) Spec() *arch.Spec { return p.spec }

// Signature returns the tree's structure signature (StructureSignature of
// the root): the canonical key under which the Program may be cached and
// re-bound to other tilings.
func (p *Program) Signature() string { return StructureSignature(p.root) }

// Evaluate runs the tiling-dependent half of the analysis on the
// Program's bound tree: loop-nest validation, data movement, resource and
// capacity checks, latency, energy and bandwidth. It allocates only
// per-evaluation state, so concurrent calls on one Program are safe.
func (p *Program) Evaluate(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &evaluator{
		ctx:        ctx,
		p:          p,
		t:          p.t,
		opts:       opts,
		nodeFill:   make([]float64, len(p.t.nodeSet)),
		nodeUpdate: make([]float64, len(p.t.nodeSet)),
		dm:         make([]LevelDM, p.spec.NumLevels()),
		tensorDM:   map[string][]LevelDM{},
	}
	return e.run()
}

// WithTiling re-binds the compiled Program to a new root carrying a
// different tiling of the same structure: same tree shape, levels,
// sibling bindings and operators (matched by identity, or by name when
// the root was built over a canonically equal copy of the graph), with
// loop nests free to differ. The re-bind is one tree walk; every
// compile-time table is shared with the receiver. Returns
// ErrInvalidMapping when the new root's structure does not match.
func (p *Program) WithTiling(root *Node) (*Program, error) {
	if root == p.root {
		return p, nil
	}
	nt, err := p.t.rebind(root)
	if err != nil {
		return nil, err
	}
	np := *p
	np.root = root
	np.t = nt
	return &np, nil
}
