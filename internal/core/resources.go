package core

import "repro/internal/workload"

// NumPE implements the Sec 5.2 PE-usage recursion: a node's own spatial
// extents multiply its children's usage, and siblings combine by max under
// Seq/Shar (they time-share the array) and by sum under Para/Pipe (they
// occupy disjoint partitions). Vector-unit leaves (softmax's small
// operators) do not consume MAC-array PEs.
func NumPE(n *Node) int {
	if n.IsLeaf() {
		if n.Op.Kind.Vector() {
			return 0
		}
		return n.SpatialProduct()
	}
	var inner int
	for _, c := range n.Children {
		u := NumPE(c)
		if n.Binding.Spatial() {
			inner += u
		} else if u > inner {
			inner = u
		}
	}
	return n.SpatialProduct() * inner
}

// unitUsage computes, for every memory level L, how many level-L instances
// one execution of the subtree occupies. A spatial loop at node n
// partitions instances of the node's child level, so it multiplies the
// usage of that level and of every level below it. Sibling usage combines
// like NumPE: max for Seq/Shar, sum for Para/Pipe. It is a pure function
// of the subtree, shared by the evaluator and the static pass.
func unitUsage(n *Node, numLevels int) []int {
	u := make([]int, numLevels)
	if n.IsLeaf() {
		for l := range u {
			u[l] = 1
		}
		// Vector leaves run on the vector unit, not the PE array.
		if n.Op.Kind.Vector() {
			u[0] = 0
		} else {
			u[0] = n.SpatialProduct()
		}
		return u
	}
	childLevel := 0
	for _, c := range n.Children {
		if c.Level > childLevel {
			childLevel = c.Level
		}
	}
	inner := make([]int, numLevels)
	for _, c := range n.Children {
		cu := unitUsage(c, numLevels)
		for l := range inner {
			// Para/Pipe children occupy disjoint units at their own
			// level and below; they still share everything above
			// (e.g. pipelined leaves partition the PE array but live
			// under one L1 buffer).
			if n.Binding.Spatial() && l <= childLevel {
				inner[l] += cu[l]
			} else if cu[l] > inner[l] {
				inner[l] = cu[l]
			}
		}
	}
	// A node's own spatial loops split the tile across instances of the
	// node's own level (a DRAM-level node splits the level below, since
	// off-chip memory is a single instance), occupying that level and
	// everything under it.
	split := n.Level
	if split > numLevels-2 {
		split = numLevels - 2
	}
	s := n.SpatialProduct()
	for l := range u {
		u[l] = inner[l]
		if u[l] == 0 {
			u[l] = 1
		}
		if l <= split {
			u[l] *= s
		}
	}
	return u
}

// footprint computes the per-instance buffer occupancy, in words, that the
// subtree requires at every memory level. A node stages one slice per
// tensor its subtree accesses, except tensors confined strictly below it
// (they never reach this level) — so Shar's "more data staged" (the Sec 5.2
// sum) shows up in the parent node's own slice set, which covers every
// child's tensors at once. Children combine element-wise by max: Seq
// children own the buffers in turns, and Para/Pipe children occupy
// *different* instances at their level, so per-instance occupancy does not
// add.
func (t *tree) footprint(n *Node, numLevels int, confineLCA map[string]int, density map[string]float64) []int64 {
	f := make([]int64, numLevels)
	id := t.id[n]
	var own int64
	for gi := range t.st.groups[id] {
		grp := &t.st.groups[id][gi]
		lca, confined := confineLCA[grp.tensor]
		if confined && lca != id && t.subtreeContains(n, lca) {
			// Confined strictly below: staged in a deeper buffer only.
			continue
		}
		var best int64
		home := (confined && lca == id) || n.IsLeaf()
		stage := func(refs []accessRef) {
			for _, r := range refs {
				leaf := t.nodeSet[r.leafID]
				var v int64
				if home {
					// The tensor's home: the whole per-step slice is
					// staged here — this is what "staging rows in the
					// on-chip buffer" means.
					v = t.sliceVolumePerInstance(n, leaf, r.acc)
				} else {
					// A tensor streaming through: only the next child's
					// working chunk is co-resident, double buffered.
					child := t.childToward(n, leaf)
					v = 2 * t.sliceVolumePerInstance(child, leaf, r.acc)
				}
				if v > best {
					best = v
				}
			}
		}
		stage(grp.reads)
		stage(grp.writes)
		if d, ok := density[grp.tensor]; ok && d < 1 {
			// Compressed sparse staging occupies less buffer space.
			best = int64(float64(best) * d)
		}
		own += best
	}
	f[n.Level] += own
	if n.IsLeaf() {
		return f
	}
	combined := make([]int64, numLevels)
	for _, c := range n.Children {
		cf := t.footprint(c, numLevels, confineLCA, density)
		for l := range combined {
			if cf[l] > combined[l] {
				combined[l] = cf[l]
			}
		}
	}
	for l := range f {
		f[l] += combined[l]
	}
	return f
}

// confinements computes, for every intermediate tensor of the graph, the
// deepest node whose subtree contains every operator touching it: the
// tensor's home. Traffic for a confined tensor never crosses its home
// node's upper boundary (Sec 5.1.2 — this is the fusion payoff: the
// intermediate is staged on chip instead of spilling to DRAM). Graph inputs
// and outputs are never confined; they must reach DRAM.
func (t *tree) confinements(g *workload.Graph) map[string]*Node {
	out := map[string]*Node{}
	for _, tensor := range g.IntermediateTensors() {
		var users []*Node
		if p := g.Producer(tensor); p != nil {
			if leaf := t.leafOf[p]; leaf != nil {
				users = append(users, leaf)
			}
		}
		for _, r := range g.Readers(tensor) {
			if leaf := t.leafOf[r]; leaf != nil {
				users = append(users, leaf)
			}
		}
		if len(users) == 0 {
			continue
		}
		out[tensor] = t.lca(users)
	}
	return out
}
