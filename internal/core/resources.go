package core

import "repro/internal/workload"

// NumPE implements the Sec 5.2 PE-usage recursion: a node's own spatial
// extents multiply its children's usage, and siblings combine by max under
// Seq/Shar (they time-share the array) and by sum under Para/Pipe (they
// occupy disjoint partitions). Vector-unit leaves (softmax's small
// operators) do not consume MAC-array PEs.
func NumPE(n *Node) int {
	if n.IsLeaf() {
		if n.Op.Kind.Vector() {
			return 0
		}
		return n.SpatialProduct()
	}
	var inner int
	for _, c := range n.Children {
		u := NumPE(c)
		if n.Binding.Spatial() {
			inner += u
		} else if u > inner {
			inner = u
		}
	}
	return n.SpatialProduct() * inner
}

// unitUsage computes, for every memory level L, how many level-L instances
// one execution of the subtree occupies. A spatial loop at node n
// partitions instances of the node's child level, so it multiplies the
// usage of that level and of every level below it. Sibling usage combines
// like NumPE: max for Seq/Shar, sum for Para/Pipe. It is a pure function
// of the subtree, shared by the static pass; the evaluator runs the same
// recursion allocation-free over scratch rows (unitUsageInto), pinned
// equal by TestUnitUsageArenaMatchesRecursive.
func unitUsage(n *Node, numLevels int) []int {
	u := make([]int, numLevels)
	if n.IsLeaf() {
		for l := range u {
			u[l] = 1
		}
		// Vector leaves run on the vector unit, not the PE array.
		if n.Op.Kind.Vector() {
			u[0] = 0
		} else {
			u[0] = n.SpatialProduct()
		}
		return u
	}
	childLevel := 0
	for _, c := range n.Children {
		if c.Level > childLevel {
			childLevel = c.Level
		}
	}
	inner := make([]int, numLevels)
	for _, c := range n.Children {
		cu := unitUsage(c, numLevels)
		for l := range inner {
			// Para/Pipe children occupy disjoint units at their own
			// level and below; they still share everything above
			// (e.g. pipelined leaves partition the PE array but live
			// under one L1 buffer).
			if n.Binding.Spatial() && l <= childLevel {
				inner[l] += cu[l]
			} else if cu[l] > inner[l] {
				inner[l] = cu[l]
			}
		}
	}
	// A node's own spatial loops split the tile across instances of the
	// node's own level (a DRAM-level node splits the level below, since
	// off-chip memory is a single instance), occupying that level and
	// everything under it.
	split := n.Level
	if split > numLevels-2 {
		split = numLevels - 2
	}
	s := n.SpatialProduct()
	for l := range u {
		u[l] = inner[l]
		if u[l] == 0 {
			u[l] = 1
		}
		if l <= split {
			u[l] *= s
		}
	}
	return u
}

// unitUsageInto is the arena form of unitUsage: one row of numLevels ints
// per node in buf (len ≥ numNodes·numLevels), computed bottom-up over the
// pre-order ids (descending order visits children first). It returns the
// root's row. The per-level math is identical to the recursion; only the
// temporary storage differs.
func (t *tree) unitUsageInto(buf []int, numLevels int) []int {
	for id := len(t.nodeSet) - 1; id >= 0; id-- {
		nd := t.nodeSet[id]
		u := buf[id*numLevels : id*numLevels+numLevels]
		if nd.IsLeaf() {
			for l := range u {
				u[l] = 1
			}
			if nd.Op.Kind.Vector() {
				u[0] = 0
			} else {
				u[0] = nd.SpatialProduct()
			}
			continue
		}
		childLevel := 0
		for _, cid := range t.st.children[id] {
			if cl := t.nodeSet[cid].Level; cl > childLevel {
				childLevel = cl
			}
		}
		for l := range u {
			u[l] = 0
		}
		for _, cid := range t.st.children[id] {
			cu := buf[cid*numLevels : cid*numLevels+numLevels]
			for l := range u {
				if nd.Binding.Spatial() && l <= childLevel {
					u[l] += cu[l]
				} else if cu[l] > u[l] {
					u[l] = cu[l]
				}
			}
		}
		split := nd.Level
		if split > numLevels-2 {
			split = numLevels - 2
		}
		s := nd.SpatialProduct()
		for l := range u {
			if u[l] == 0 {
				u[l] = 1
			}
			if l <= split {
				u[l] *= s
			}
		}
	}
	return buf[0:numLevels:numLevels]
}

// Confinement relation of one (node, tensor-group) pair, precomputed once
// per structure + confinement set: where the tensor's LCA home sits
// relative to the node. The data-movement pass skips confined-at-or-below
// groups (their traffic never crosses the node's upper boundary); the
// footprint pass skips strictly-below groups and stages confined-here
// groups as full slices (the tensor's home).
type confRel = uint8

const (
	confNone  confRel = iota // not confined within this node's subtree
	confBelow                // confined strictly below this node
	confHere                 // this node is the tensor's home LCA
)

// confRelTable precomputes the confinement relation for every (node, group)
// pair from a tensor→LCA-id map. It is a pure function of the structure and
// the confinement set, shared by Compile and the static analyzer.
func confRelTable(t *tree, confine map[string]int) [][]confRel {
	out := make([][]confRel, len(t.nodeSet))
	for id := range t.nodeSet {
		groups := t.st.groups[id]
		if len(groups) == 0 {
			continue
		}
		row := make([]confRel, len(groups))
		for gi := range groups {
			lca, ok := confine[groups[gi].tensor]
			switch {
			case !ok:
			case lca == id:
				row[gi] = confHere
			case t.subtreeContains(id, lca):
				row[gi] = confBelow
			}
		}
		out[id] = row
	}
	return out
}

// footprintInto computes the per-instance buffer occupancy, in words, that
// each subtree requires at every memory level: one row of numLevels int64s
// per node in rows (len ≥ numNodes·numLevels), bottom-up over the pre-order
// ids. It returns the root's row. A node stages one slice per tensor its
// subtree accesses, except tensors confined strictly below it (they never
// reach this level) — so Shar's "more data staged" (the Sec 5.2 sum) shows
// up in the parent node's own slice set, which covers every child's tensors
// at once. Children combine element-wise by max: Seq children own the
// buffers in turns, and Para/Pipe children occupy *different* instances at
// their level, so per-instance occupancy does not add.
func (t *tree) footprintInto(rows []int64, numLevels int, rel [][]confRel, density map[string]float64) []int64 {
	for id := len(t.nodeSet) - 1; id >= 0; id-- {
		nd := t.nodeSet[id]
		f := rows[id*numLevels : id*numLevels+numLevels]
		// Children combine element-wise by max into this node's row.
		for l := range f {
			f[l] = 0
		}
		for _, cid := range t.st.children[id] {
			cf := rows[cid*numLevels : cid*numLevels+numLevels]
			for l := range f {
				if cf[l] > f[l] {
					f[l] = cf[l]
				}
			}
		}
		var own int64
		for gi := range t.st.groups[id] {
			grp := &t.st.groups[id][gi]
			if rel[id][gi] == confBelow {
				// Confined strictly below: staged in a deeper buffer only.
				continue
			}
			var best int64
			home := rel[id][gi] == confHere || nd.IsLeaf()
			stage := func(refs []accessRef) {
				for _, r := range refs {
					var v int64
					if home {
						// The tensor's home: the whole per-step slice is
						// staged here — this is what "staging rows in the
						// on-chip buffer" means.
						v = t.sliceVolumePerInstanceI(id, r.leafID, r.iix)
					} else {
						// A tensor streaming through: only the next child's
						// working chunk is co-resident, double buffered.
						child := t.childToward(id, r.leafID)
						v = 2 * t.sliceVolumePerInstanceI(child, r.leafID, r.iix)
					}
					if v > best {
						best = v
					}
				}
			}
			stage(grp.reads)
			stage(grp.writes)
			if d, ok := density[grp.tensor]; ok && d < 1 {
				// Compressed sparse staging occupies less buffer space.
				best = int64(float64(best) * d)
			}
			own += best
		}
		f[nd.Level] += own
	}
	return rows[0:numLevels:numLevels]
}

// footprintDeltaInto is footprintInto recomputing only the rows marked in
// need. A node's row is a pure function of its subtree's loops (slice
// volumes read the path below the node; children rows fold in the rest),
// so rows whose subtrees did not change since the rows were last written
// are reused as-is — the delta path's footprint phase.
func (t *tree) footprintDeltaInto(rows []int64, numLevels int, rel [][]confRel, density map[string]float64, need []bool) []int64 {
	for id := len(t.nodeSet) - 1; id >= 0; id-- {
		if !need[id] {
			continue
		}
		nd := t.nodeSet[id]
		f := rows[id*numLevels : id*numLevels+numLevels]
		for l := range f {
			f[l] = 0
		}
		for _, cid := range t.st.children[id] {
			cf := rows[cid*numLevels : cid*numLevels+numLevels]
			for l := range f {
				if cf[l] > f[l] {
					f[l] = cf[l]
				}
			}
		}
		var own int64
		for gi := range t.st.groups[id] {
			grp := &t.st.groups[id][gi]
			if rel[id][gi] == confBelow {
				continue
			}
			var best int64
			home := rel[id][gi] == confHere || nd.IsLeaf()
			stage := func(refs []accessRef) {
				for _, r := range refs {
					var v int64
					if home {
						v = t.sliceVolumePerInstanceI(id, r.leafID, r.iix)
					} else {
						child := t.childToward(id, r.leafID)
						v = 2 * t.sliceVolumePerInstanceI(child, r.leafID, r.iix)
					}
					if v > best {
						best = v
					}
				}
			}
			stage(grp.reads)
			stage(grp.writes)
			if d, ok := density[grp.tensor]; ok && d < 1 {
				best = int64(float64(best) * d)
			}
			own += best
		}
		f[nd.Level] += own
	}
	return rows[0:numLevels:numLevels]
}

// confinements computes, for every intermediate tensor of the graph, the
// pre-order id of the deepest node whose subtree contains every operator
// touching it: the tensor's home. Traffic for a confined tensor never
// crosses its home node's upper boundary (Sec 5.1.2 — this is the fusion
// payoff: the intermediate is staged on chip instead of spilling to DRAM).
// Graph inputs and outputs are never confined; they must reach DRAM.
func (t *tree) confinements(g *workload.Graph) map[string]int {
	out := map[string]int{}
	for _, tensor := range g.IntermediateTensors() {
		var users []int
		if p := g.Producer(tensor); p != nil {
			if id, ok := t.st.leafOf[p]; ok {
				users = append(users, id)
			}
		}
		for _, r := range g.Readers(tensor) {
			if id, ok := t.st.leafOf[r]; ok {
				users = append(users, id)
			}
		}
		if len(users) == 0 {
			continue
		}
		out[tensor] = t.lcaIDs(users)
	}
	return out
}
