package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/workload"
)

// NodeReport profiles one tile of an evaluated analysis tree: where its
// data comes from, how much moves, and what bounds its latency.
type NodeReport struct {
	Name    string
	Level   int
	Depth   int
	IsLeaf  bool
	Binding Binding

	// Invocations is how many times the tile executes in total.
	Invocations float64
	// FillWords/UpdateWords cross the tile's upper boundary over the
	// whole run.
	FillWords, UpdateWords float64
	// LatencyPerExec decomposes one execution (the Sec 5.3 recursion).
	LoadCycles, InnerCycles, StoreCycles float64
	// Bound names the max() winner: "load", "compute" or "store".
	Bound string
}

// Explain evaluates the dataflow and returns a per-node profile in
// pre-order, for the "architecture analysis" use the paper's Fig 3 lists.
// It shares all analysis state with Evaluate.
func Explain(root *Node, g *workload.Graph, spec *arch.Spec, opts Options) ([]NodeReport, error) {
	p, err := Compile(root, g, spec)
	if err != nil {
		return nil, err
	}
	return p.Explain(opts)
}

// Explain profiles the Program's bound tree node by node. Like Evaluate it
// runs on a pooled scratch arena, so concurrent calls are safe.
func (p *Program) Explain(opts Options) ([]NodeReport, error) {
	t := p.t
	s := p.getScratch()
	defer p.putScratch(s)
	e := &evaluator{ctx: context.Background(), p: p, t: t, opts: opts, s: s}
	s.reset()
	if err := validateTiling(t, p.g); err != nil {
		return nil, err
	}
	if err := e.accountDataMovement(); err != nil {
		return nil, err
	}

	reports := make([]NodeReport, 0, len(t.nodeSet))
	var visit func(id, depth int)
	visit = func(id, depth int) {
		n := t.nodeSet[id]
		inv := t.relevantInvocations(id)
		bw := e.effBandwidth(id)
		load, store := 0.0, 0.0
		if inv > 0 && bw > 0 && !math.IsInf(bw, 1) {
			load = s.nodeFill[id] / inv / bw
			store = s.nodeUpdate[id] / inv / bw
		}
		var inner float64
		if n.IsLeaf() {
			inner = float64(n.TemporalTrips()) * e.leafIterCost(n) * p.opDensity[id]
		} else {
			for _, c := range t.st.children[id] {
				lc := e.latency(c, false) * e.temporalRepeats(id, c)
				if n.Binding.Spatial() {
					if lc > inner {
						inner = lc
					}
				} else {
					inner += lc
				}
			}
		}
		bound := "compute"
		if load >= inner && load >= store {
			bound = "load"
		} else if store >= inner && store >= load {
			bound = "store"
		}
		reports = append(reports, NodeReport{
			Name: n.Name, Level: n.Level, Depth: depth,
			IsLeaf: n.IsLeaf(), Binding: n.Binding,
			Invocations: inv,
			FillWords:   s.nodeFill[id], UpdateWords: s.nodeUpdate[id],
			LoadCycles: load, InnerCycles: inner, StoreCycles: store,
			Bound: bound,
		})
		for _, c := range t.st.children[id] {
			visit(c, depth+1)
		}
	}
	visit(0, 0)
	return reports, nil
}

// RenderReports prints the profile as an indented table.
func RenderReports(reports []NodeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-5s %-5s %10s %12s %12s %10s %10s %10s %-7s\n",
		"tile", "level", "bind", "invocs", "fill(words)", "upd(words)", "load/exec", "inner/exec", "store/exec", "bound")
	for _, r := range reports {
		name := strings.Repeat("  ", r.Depth) + r.Name
		bind := r.Binding.String()
		if r.IsLeaf {
			bind = "leaf"
		}
		fmt.Fprintf(&b, "%-28s L%-4d %-5s %10.4g %12.4g %12.4g %10.4g %10.4g %10.4g %-7s\n",
			name, r.Level, bind, r.Invocations, r.FillWords, r.UpdateWords,
			r.LoadCycles, r.InnerCycles, r.StoreCycles, r.Bound)
	}
	return b.String()
}
