package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func archEdgeForTest() *arch.Spec { return arch.Edge() }

// chain3 builds a three-op chain X→Mid1→Mid2→Out over shared dims for
// tree-internal tests.
func chain3() *workload.Graph {
	mk := func(name, in, out string) *workload.Operator {
		return &workload.Operator{
			Name: name, Kind: workload.KindMAC,
			Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "j", Size: 32}},
			Reads: []workload.Access{
				{Tensor: in, Index: []workload.Index{workload.I("i"), workload.I("j")}},
			},
			Write: workload.Access{Tensor: out, Index: []workload.Index{workload.I("i"), workload.I("j")}},
		}
	}
	return workload.MustGraph("chain3", 2,
		mk("F", "X", "Mid1"), mk("G", "Mid1", "Mid2"), mk("H", "Mid2", "Out"))
}

func TestConfinementLCA(t *testing.T) {
	g := chain3()
	lf := Leaf("lf", g.Op("F"), T("i", 8), T("j", 32))
	lg := Leaf("lg", g.Op("G"), T("i", 8), T("j", 32))
	lh := Leaf("lh", g.Op("H"), T("i", 8), T("j", 32))
	inner := Tile("inner", 1, Shar, []Loop{T("i", 2)}, lf, lg)
	outer := Tile("outer", 1, Shar, []Loop{T("i", 2)}, inner, lh)
	root := Tile("root", 2, Seq, nil, outer)
	tr, err := buildTree(root)
	if err != nil {
		t.Fatal(err)
	}
	conf := tr.confinements(g)
	if conf["Mid1"] != tr.id[inner] {
		t.Errorf("Mid1 confined at %v, want inner", tr.nodeSet[conf["Mid1"]].Name)
	}
	if conf["Mid2"] != tr.id[outer] {
		t.Errorf("Mid2 confined at %v, want outer", tr.nodeSet[conf["Mid2"]].Name)
	}
	if _, ok := conf["X"]; ok {
		t.Error("graph input must not be confined")
	}
	if _, ok := conf["Out"]; ok {
		t.Error("graph output must not be confined")
	}
}

func TestChildToward(t *testing.T) {
	g := chain3()
	leaf := Leaf("l", g.Op("F"), T("i", 32), T("j", 32))
	mid := Tile("m", 1, Seq, nil, leaf)
	root := Tile("r", 2, Seq, nil, mid)
	// The other two ops still need leaves for a valid tree build; use a
	// raw buildTree on a subtree instead.
	tr, err := buildTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.childToward(tr.id[root], tr.id[leaf]); got != tr.id[mid] {
		t.Errorf("childToward(root) = %s", tr.nodeSet[got].Name)
	}
	if got := tr.childToward(tr.id[mid], tr.id[leaf]); got != tr.id[leaf] {
		t.Errorf("childToward(mid) = %s", tr.nodeSet[got].Name)
	}
	if got := tr.childToward(tr.id[leaf], tr.id[leaf]); got != tr.id[leaf] {
		t.Errorf("childToward(leaf) = %s", tr.nodeSet[got].Name)
	}
}

func TestInvocationsRelevance(t *testing.T) {
	g := chain3()
	lf := Leaf("lf", g.Op("F"), T("i", 8), T("j", 8))
	lg := Leaf("lg", g.Op("G"), T("i", 8), T("j", 8))
	lh := Leaf("lh", g.Op("H"), T("i", 8), T("j", 8))
	stage := Tile("stage", 1, Shar, []Loop{T("i", 2), T("j", 4)}, lf, lg, lh)
	root := Tile("root", 2, Seq, []Loop{T("i", 2)}, stage)
	tr, err := buildTree(root)
	if err != nil {
		t.Fatal(err)
	}
	// Each leaf re-executes for every relevant ancestor loop iteration:
	// stage (2·4) × root (2) = 16.
	if inv := tr.relevantInvocations(tr.id[lf]); inv != 16 {
		t.Errorf("invocations = %v, want 16", inv)
	}
	// Restricted to dim i only: 2 × 2 = 4.
	if inv := tr.invocationsWhere(tr.id[lf], map[string]bool{"i": true}); inv != 4 {
		t.Errorf("i-invocations = %v, want 4", inv)
	}
	if inv := tr.invocationsWhere(tr.id[lf], map[string]bool{}); inv != 1 {
		t.Errorf("empty-set invocations = %v, want 1", inv)
	}
}

func TestStrides(t *testing.T) {
	g := workload.BatchedConv1D()
	op := g.Ops[0]
	// Two temporal loops over the same dim at one node: the outer one
	// strides by the inner extent times the step coverage.
	leaf := Leaf("leaf", op, T("j", 2), T("j", 3), T("i", 12), T("k", 3), S("j", 2))
	tr, err := buildTree(leaf)
	if err != nil {
		t.Fatal(err)
	}
	tl := temporalLoops(leaf)
	if len(tl) != 4 {
		t.Fatalf("temporal loops = %d", len(tl))
	}
	s := tr.strides(0, 0, tl)
	// stepCov(j) = spatial 2; inner j loop strides 2, outer j strides 3·2.
	if s[1] != 2 || s[0] != 6 {
		t.Errorf("j strides = outer %d inner %d, want 6/2", s[0], s[1])
	}
	// i has a single loop: stride = stepCov(i) = 1.
	if s[2] != 1 {
		t.Errorf("i stride = %d", s[2])
	}
}

func TestNodeHelpers(t *testing.T) {
	g := chain3()
	leaf := Leaf("l", g.Op("F"), T("i", 4), S("i", 2), T("j", 8), S("j", 4))
	if leaf.TemporalTrips() != 32 {
		t.Errorf("trips = %d", leaf.TemporalTrips())
	}
	if leaf.SpatialProduct() != 8 {
		t.Errorf("spatial = %d", leaf.SpatialProduct())
	}
	if leaf.SpatialExtent("i") != 2 || leaf.SpatialExtent("j") != 4 {
		t.Error("SpatialExtent")
	}
	if leaf.DimExtent("i") != 8 || leaf.DimExtent("j") != 32 {
		t.Error("DimExtent")
	}
	if !leaf.IsLeaf() {
		t.Error("IsLeaf")
	}
	node := Tile("n", 1, Pipe, nil, leaf)
	if len(node.Leaves()) != 1 || len(node.Ops()) != 1 {
		t.Error("Leaves/Ops")
	}
	if node.Binding.String() != "Pipe" || Seq.String() != "Seq" || Shar.String() != "Shar" || Para.String() != "Para" {
		t.Error("binding names")
	}
	if Temporal.String() != "Tp" || Spatial.String() != "Sp" {
		t.Error("loop kind names")
	}
}

func TestBuildTreeRejects(t *testing.T) {
	g := chain3()
	op := g.Op("F")
	// Operator in two leaves.
	l1 := Leaf("a", op, T("i", 32), T("j", 32))
	l2 := Leaf("b", op, T("i", 32), T("j", 32))
	if _, err := buildTree(Tile("r", 2, Seq, nil, l1, l2)); err == nil {
		t.Error("want duplicate-operator error")
	}
	// Interior node without children.
	if _, err := buildTree(Tile("r", 2, Seq, nil)); err == nil {
		t.Error("want childless-interior error")
	}
	// Child above parent level.
	hi := Tile("hi", 3, Seq, nil, Leaf("x", op, T("i", 32), T("j", 32)))
	if _, err := buildTree(Tile("r", 2, Seq, nil, hi)); err == nil {
		t.Error("want level-inversion error")
	}
}

func TestExplainProfilesTree(t *testing.T) {
	g := chain3()
	lf := Leaf("lf", g.Op("F"), T("i", 8), T("j", 32))
	lg := Leaf("lg", g.Op("G"), T("i", 8), T("j", 32))
	lh := Leaf("lh", g.Op("H"), T("i", 8), T("j", 32))
	stage := Tile("stage", 1, Shar, []Loop{T("i", 4)}, lf, lg, lh)
	root := Tile("root", 2, Seq, nil, stage)
	spec := archEdgeForTest()
	reports, err := Explain(root, g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("reports = %d, want 5 nodes", len(reports))
	}
	byName := map[string]NodeReport{}
	for _, r := range reports {
		byName[r.Name] = r
	}
	// The stage moves the graph inputs/outputs; its fills are positive
	// and the leaves' fills come out of the stage.
	if byName["stage"].FillWords <= 0 {
		t.Error("stage has no fills")
	}
	for _, leaf := range []string{"lf", "lg", "lh"} {
		r := byName[leaf]
		if !r.IsLeaf || r.FillWords <= 0 || r.Invocations != 4 {
			t.Errorf("%s report wrong: %+v", leaf, r)
		}
	}
	// The profile's node set and the evaluation agree on totals.
	res, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	var leafFills float64
	for _, leaf := range []string{"lf", "lg", "lh"} {
		leafFills += byName[leaf].FillWords
	}
	if leafFills != res.DM[1].Read {
		t.Errorf("leaf fills %v != L1 reads %v", leafFills, res.DM[1].Read)
	}
	out := RenderReports(reports)
	if !strings.Contains(out, "stage") || !strings.Contains(out, "bound") {
		t.Error("render incomplete")
	}
}

// TestUnitUsageArenaMatchesRecursive pins the arena form of the unit-usage
// pass (unitUsageInto, used by the evaluator) to the recursive reference
// form (unitUsage, used by the static analyzer) over several structures.
func TestUnitUsageArenaMatchesRecursive(t *testing.T) {
	g := chain3()
	lf := Leaf("lf", g.Op("F"), T("i", 8), S("i", 2), T("j", 32))
	lg := Leaf("lg", g.Op("G"), T("i", 16), T("j", 8), S("j", 4))
	lh := Leaf("lh", g.Op("H"), T("i", 16), T("j", 32))
	stage := Tile("stage", 1, Shar, []Loop{T("i", 2), S("j", 2)}, lf, lg, lh)
	root := Tile("root", 2, Seq, []Loop{T("i", 2)}, stage)
	for _, numLevels := range []int{2, 3, 4} {
		tr, err := buildTree(root)
		if err != nil {
			t.Fatal(err)
		}
		want := unitUsage(root, numLevels)
		buf := make([]int, len(tr.nodeSet)*numLevels)
		got := tr.unitUsageInto(buf, numLevels)
		if len(got) != len(want) {
			t.Fatalf("numLevels=%d: lengths %d vs %d", numLevels, len(got), len(want))
		}
		for l := range want {
			if got[l] != want[l] {
				t.Errorf("numLevels=%d level %d: arena %d, recursive %d", numLevels, l, got[l], want[l])
			}
		}
	}
}
