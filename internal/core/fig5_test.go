package core

import (
	"testing"

	"repro/internal/workload"
)

// TestFigure5SingleTileDM reproduces the worked example of Figure 5: a
// batched 1D convolution tile with temporal loops (i1=3, j1=3) over spatial
// loops (i0=4, j0=4, k0=3). The paper derives a total data-movement volume
// of 168 elements for tensor A.
func TestFigure5SingleTileDM(t *testing.T) {
	g := workload.BatchedConv1D()
	op := g.Ops[0]
	leaf := Leaf("tile", op,
		T("i", 3), T("j", 3),
		S("i", 4), S("j", 4), S("k", 3),
	)
	tr, err := buildTree(leaf)
	if err != nil {
		t.Fatal(err)
	}

	var accA, accB workload.Access
	for _, r := range op.Reads {
		switch r.Tensor {
		case "A":
			accA = r
		case "B":
			accB = r
		}
	}

	// Slice extents: A is 4×6, B is 4×3, C is 4×4 (Fig 5).
	exts := func(acc workload.Access) []int64 {
		return tr.sliceExtentsInto(make([]int64, len(acc.Index)), 0, 0, acc)
	}
	if got := exts(accA); got[0] != 4 || got[1] != 6 {
		t.Errorf("slice extents of A = %v, want [4 6]", got)
	}
	if got := exts(accB); got[0] != 4 || got[1] != 3 {
		t.Errorf("slice extents of B = %v, want [4 3]", got)
	}
	if got := exts(op.Write); got[0] != 4 || got[1] != 4 {
		t.Errorf("slice extents of C = %v, want [4 4]", got)
	}

	e := &evaluator{t: tr, s: &Scratch{}}
	// The headline number: DM_A = 168 elements.
	if got := e.perExecDM(0, 0, accA, false); got != 168 {
		t.Errorf("perExecDM(A) = %v, want 168", got)
	}
	// B is fully reused along j: 12 compulsory + 2×12 when i advances.
	if got := e.perExecDM(0, 0, accB, false); got != 36 {
		t.Errorf("perExecDM(B) = %v, want 36", got)
	}
	// C: every output element written exactly once, 12×12 = 144.
	if got := e.perExecDM(0, 0, op.Write, false); got != 144 {
		t.Errorf("perExecDM(C) = %v, want 144", got)
	}
}

// TestFigure5LoopOrderMatters checks that swapping the temporal loop order
// changes reuse: iterating i innermost breaks B's full reuse.
func TestFigure5LoopOrderMatters(t *testing.T) {
	g := workload.BatchedConv1D()
	op := g.Ops[0]
	leaf := Leaf("tile", op,
		T("j", 3), T("i", 3), // swapped
		S("i", 4), S("j", 4), S("k", 3),
	)
	tr, err := buildTree(leaf)
	if err != nil {
		t.Fatal(err)
	}
	var accB workload.Access
	for _, r := range op.Reads {
		if r.Tensor == "B" {
			accB = r
		}
	}
	// With i innermost, B's slice changes on every i-step: the i boundary
	// occurs (3−1)·3 = 6 times moving 12 fresh elements, and the j
	// boundary resets i (full 12-element refetch) twice.
	e := &evaluator{t: tr, s: &Scratch{}}
	got := e.perExecDM(0, 0, accB, false)
	want := 12.0 + 6*12 + 2*12
	if got != want {
		t.Errorf("perExecDM(B) with i innermost = %v, want %v", got, want)
	}
}
