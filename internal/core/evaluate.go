package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/workload"
)

// ErrInfeasible marks a design point that violates a hardware resource
// limit — over the PE budget, over a level's instance count, or over a
// buffer capacity. errors.Is(err, ErrInfeasible) matches every such error,
// letting callers (mappers pruning candidates, the evaluation service
// picking a status code) separate infeasible points from caller mistakes
// and internal faults.
var ErrInfeasible = errors.New("core: infeasible mapping")

// ErrInvalidMapping marks a structurally broken mapping: a tree that is
// not a complete, exact tiling of the workload on the architecture.
var ErrInvalidMapping = errors.New("core: invalid mapping")

// ErrStructureMismatch marks a re-bind rejection: the tree's shape, levels,
// sibling bindings or operators differ from the compiled structure. Every
// such error also matches ErrInvalidMapping; the finer mark lets callers on
// the re-bind fast path (WithTiling, EvaluateDelta, EvaluateBatch) tell a
// wrong structure — worth recompiling for — from an invalid tiling of the
// right structure, which a recompile would reject identically.
var ErrStructureMismatch = errors.New("core: structure mismatch")

// structureError adds the ErrStructureMismatch mark to a re-bind error
// without altering its message or its ErrInvalidMapping mark.
type structureError struct{ err error }

func (e *structureError) Error() string        { return e.err.Error() }
func (e *structureError) Is(target error) bool { return target == ErrStructureMismatch }
func (e *structureError) Unwrap() error        { return e.err }

// markedError tags a formatted message with a sentinel for errors.Is
// without altering the message text.
type markedError struct {
	msg  string
	mark error
}

func (e *markedError) Error() string        { return e.msg }
func (e *markedError) Is(target error) bool { return target == e.mark }

func infeasiblef(format string, args ...any) error {
	return &markedError{msg: fmt.Sprintf(format, args...), mark: ErrInfeasible}
}

func invalidf(format string, args ...any) error {
	return &markedError{msg: fmt.Sprintf(format, args...), mark: ErrInvalidMapping}
}

// LevelDM is the data movement recorded at one memory level, in words,
// using the paper's Fig 10d taxonomy: fill is data loaded into this level
// from the level above, read is data sent from this level down to the level
// below, and update is data written back into this level from below.
type LevelDM struct {
	Fill   float64
	Read   float64
	Update float64
}

// Total is fill+read+update: the access count the energy model charges.
func (l LevelDM) Total() float64 { return l.Fill + l.Read + l.Update }

// Result is the outcome of evaluating one fusion dataflow on one
// architecture: the performance-critical metrics of Sec 5 plus the derived
// latency, energy, utilization and bandwidth figures of Sec 7.
type Result struct {
	// Cycles is the modeled execution latency.
	Cycles float64
	// ComputeCycles is the latency under infinite memory bandwidth — the
	// denominator of the Sec 7.5 slow-down metric.
	ComputeCycles float64

	// DM is per-level data movement, indexed like spec.Levels.
	DM []LevelDM

	// TensorDM breaks DM down per tensor, for analysis and debugging.
	TensorDM map[string][]LevelDM

	// MACs and VectorOps are the workload's inherent op counts.
	MACs      float64
	VectorOps float64

	// Energy is the per-level/compute energy breakdown.
	Energy energy.Breakdown

	// PEsUsed is the Sec 5.2 NumPE of the root; TotalPEs the chip total.
	PEsUsed  int
	TotalPEs int

	// UnitUsage[l] is how many level-l instances the dataflow occupies;
	// Utilization is the sub-core (level 1) occupancy ratio of Fig 11d.
	UnitUsage   []int
	Utilization float64

	// FootprintWords is the per-instance buffer occupancy per level.
	FootprintWords []int64

	// SlowDown[l] is max(level-l access latency / compute latency, 1),
	// the Sec 7.5 metric; BandwidthReqGBs[l] is the minimum aggregate
	// bandwidth at level l for slow-down 1 (Fig 14).
	SlowDown        []float64
	BandwidthReqGBs []float64
}

// DRAMTraffic is the off-chip data movement in words (reads + writes at the
// DRAM level), the Fig 10b metric.
func (r *Result) DRAMTraffic() float64 {
	l := r.DM[len(r.DM)-1]
	return l.Read + l.Update
}

// OnChipTraffic sums data movement at all on-chip levels above the
// registers (the Fig 10c metric).
func (r *Result) OnChipTraffic() float64 {
	var v float64
	for i := 1; i < len(r.DM)-1; i++ {
		v += r.DM[i].Total()
	}
	return v
}

// LevelTraffic is the total data movement at one level.
func (r *Result) LevelTraffic(level int) float64 { return r.DM[level].Total() }

// EnergyPJ is the total modeled energy.
func (r *Result) EnergyPJ() float64 { return r.Energy.TotalPJ() }

// CapacityError reports a buffer level whose per-instance footprint exceeds
// its capacity — the OOM condition of Table 7 and Table 8.
type CapacityError struct {
	Level     int
	LevelName string
	NeedWords int64
	HaveWords int64
}

// Error implements error.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("core: level %d (%s) over capacity: need %d words, have %d",
		e.Level, e.LevelName, e.NeedWords, e.HaveWords)
}

// Is matches ErrInfeasible: a capacity violation is one of the resource
// limits that make a design point infeasible.
func (e *CapacityError) Is(target error) bool { return target == ErrInfeasible }

// IsOOM reports whether the error is a buffer-capacity violation.
func IsOOM(err error) bool {
	_, ok := err.(*CapacityError)
	return ok
}

// Options tunes evaluation.
type Options struct {
	// SkipCapacityCheck evaluates even when buffers overflow (Table 7's
	// "no memory limit" scenario).
	SkipCapacityCheck bool
	// SkipPECheck evaluates even when the spatial mapping exceeds the
	// PE array.
	SkipPECheck bool
	// DisableRetention turns off wrap-around retention, reverting to the
	// paper's conservative assumption that "data replacement happens for
	// every outer iteration" — the source of its small-tile
	// overestimation (Fig 8d discussion). Used by the ablation study.
	DisableRetention bool
}

// evaluator carries the per-evaluation state. All mutable analysis state
// lives in the scratch arena, never on the shared Program or its compiled
// tree, which is what makes concurrent Evaluate calls on one Program safe.
type evaluator struct {
	ctx  context.Context
	p    *Program
	t    *tree
	opts Options
	s    *Scratch
	// delta, when non-nil, records per-(node,group) volumes as the full
	// pass computes them, so a later EvaluateDelta can replay unaffected
	// nodes bit-identically instead of recomputing them.
	delta *DeltaState
	// Incremental masks, set only on the delta path (all nil on a full
	// evaluation): affected[i] false lets accountDataMovement replay node
	// i's cached volumes; fpNeed[i] false keeps node i's footprint row;
	// vDirty/vDirtyUp restrict validation to nodes whose checks could
	// have changed. Clean items cannot fail if the snapshot tiling
	// passed, so the first reported error is identical to a full run's.
	affected []bool
	fpNeed   []bool
	vDirty   []bool
	vDirtyUp []bool
}

// Evaluate runs TileFlow's tree-based analysis for the dataflow rooted at
// root over graph g on architecture spec, returning the modeled metrics.
// It is the one-shot composition of Compile and Program.Evaluate; callers
// evaluating many tilings of one tree structure should Compile once and
// re-evaluate through the Program.
func Evaluate(root *Node, g *workload.Graph, spec *arch.Spec, opts Options) (*Result, error) {
	return EvaluateContext(context.Background(), root, g, spec, opts)
}

// EvaluateContext is Evaluate with cancellation: the analysis aborts with
// ctx.Err() at phase boundaries and between per-node data-movement passes,
// so a service can bound the latency of one evaluation.
func EvaluateContext(ctx context.Context, root *Node, g *workload.Graph, spec *arch.Spec, opts Options) (*Result, error) {
	p, err := Compile(root, g, spec)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(ctx, opts)
}

// run executes the tiling-dependent analysis phases — the Evaluate half of
// the Compile → Evaluate pipeline — on the evaluator's bound tree. The
// returned Result aliases the scratch arena.
func (e *evaluator) run() (*Result, error) {
	t, spec, opts, s := e.t, e.p.spec, e.opts, e.s
	s.reset()
	if e.vDirty == nil {
		if err := validateTiling(t, e.p.g); err != nil {
			return nil, err
		}
	} else if err := validateTilingDelta(t, e.p.g, e.vDirty, e.vDirtyUp); err != nil {
		return nil, err
	}
	if err := e.accountDataMovement(); err != nil {
		return nil, err
	}

	res := &s.res
	*res = Result{
		DM:        s.dm,
		TensorDM:  s.tensorDM,
		MACs:      e.p.macs,
		VectorOps: e.p.vops,
		PEsUsed:   NumPE(t.root),
		TotalPEs:  spec.TotalPEs(),
	}

	res.UnitUsage = t.unitUsageInto(s.unitBuf, spec.NumLevels())
	if inst := spec.Instances(1); inst > 0 {
		u := res.UnitUsage[1]
		if u > inst {
			u = inst
		}
		res.Utilization = float64(u) / float64(inst)
	}
	if !opts.SkipPECheck {
		if res.PEsUsed > res.TotalPEs {
			return nil, infeasiblef("core: mapping uses %d PEs, chip has %d", res.PEsUsed, res.TotalPEs)
		}
		for l := 0; l < spec.DRAMLevel(); l++ {
			if inst := spec.Instances(l); res.UnitUsage[l] > inst {
				return nil, infeasiblef("core: mapping occupies %d level-%d (%s) instances, chip has %d",
					res.UnitUsage[l], l, spec.Levels[l].Name, inst)
			}
		}
	}

	if e.fpNeed == nil {
		res.FootprintWords = t.footprintInto(s.fpRows, spec.NumLevels(), e.p.confRel, e.p.density)
	} else {
		res.FootprintWords = t.footprintDeltaInto(s.fpRows, spec.NumLevels(), e.p.confRel, e.p.density, e.fpNeed)
	}
	if !opts.SkipCapacityCheck {
		for l := 0; l < spec.DRAMLevel(); l++ {
			if need, have := res.FootprintWords[l], spec.CapacityWords(l); need > have {
				return nil, &CapacityError{Level: l, LevelName: spec.Levels[l].Name, NeedWords: need, HaveWords: have}
			}
		}
	}

	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	res.Cycles = e.latency(0, false)
	res.ComputeCycles = e.latency(0, true)

	// Energy: per-level accesses plus register operand traffic for the
	// compute itself (two operand reads per op).
	accesses := s.accesses
	for i := range s.dm {
		accesses[i] = s.dm[i].Total()
	}
	accesses[0] += 2 * (res.MACs + res.VectorOps)
	res.Energy = e.p.etab.EstimateInto(s.perLevel, accesses, res.MACs, res.VectorOps)

	// Slow-down and bandwidth requirement per level (Sec 7.5, Fig 14).
	res.SlowDown = s.slow
	res.BandwidthReqGBs = s.bwreq
	for l := 1; l < spec.NumLevels(); l++ {
		traffic := s.dm[l].Total()
		accessCycles := 0.0
		if wpc := spec.WordsPerCycle(l); wpc > 0 {
			accessCycles = traffic / wpc
		}
		sd := 1.0
		if res.ComputeCycles > 0 && accessCycles/res.ComputeCycles > 1 {
			sd = accessCycles / res.ComputeCycles
		}
		res.SlowDown[l] = sd
		res.BandwidthReqGBs[l] = 0
		if res.ComputeCycles > 0 {
			res.BandwidthReqGBs[l] = traffic * float64(spec.WordBytes) * spec.FreqGHz / res.ComputeCycles
		}
	}
	return res, nil
}

// densityOf snapshots the graph's per-tensor densities for the footprint
// computation (only non-dense entries matter).
func densityOf(g *workload.Graph) map[string]float64 {
	out := map[string]float64{}
	for name, t := range g.Tensors {
		if d := t.EffDensity(); d < 1 {
			out[name] = d
		}
	}
	return out
}

// macOps and vectorOps count effective operations: on gating hardware a
// sparse operand skips its zero iterations, so counts scale with the
// product of read densities (1.0 when fully dense).
func macOps(g *workload.Graph) float64 {
	var n float64
	for _, op := range g.Ops {
		if op.Kind == workload.KindMAC {
			n += float64(op.OpCount()) * g.OpDensity(op)
		}
	}
	return n
}

func vectorOps(g *workload.Graph) float64 {
	var n float64
	for _, op := range g.Ops {
		if op.Kind.Vector() {
			n += float64(op.OpCount()) * g.OpDensity(op)
		}
	}
	return n
}

// validateStructure checks the tiling-independent half of mapping
// legality at compile time: every operator has a leaf tile, and every
// node's level exists on the architecture.
func validateStructure(t *tree, g *workload.Graph, spec *arch.Spec) error {
	for _, op := range g.Ops {
		if _, ok := t.st.leafOf[op]; !ok {
			return invalidf("core: operator %q has no leaf tile in the tree", op.Name)
		}
	}
	for _, n := range t.nodeSet {
		if n.Level < 0 || n.Level >= spec.NumLevels() {
			return invalidf("core: node %q level %d outside architecture with %d levels", n.Name, n.Level, spec.NumLevels())
		}
	}
	return nil
}

// validateTiling checks the loop nests of one tiling against the compiled
// structure: the tree must be a complete, exact tiling of the graph. It
// runs on every Evaluate, since re-binds change only the loops.
func validateTiling(t *tree, g *workload.Graph) error {
	for _, op := range g.Ops {
		leafID, ok := t.st.leafOf[op]
		if !ok {
			return invalidf("core: operator %q has no leaf tile in the tree", op.Name)
		}
		for _, d := range op.Dims {
			if cov := t.fullCoverage(leafID, d.Name); cov != d.Size {
				return invalidf("core: operator %q dim %q tiled to %d, want %d", op.Name, d.Name, cov, d.Size)
			}
		}
	}
	for i, n := range t.nodeSet {
		if err := validateNodeLoops(t, i, n); err != nil {
			return err
		}
	}
	return nil
}

// fullCoverage is the leaf-to-root extent product of one dimension: the
// exact-tiling check's quantity. Interned dims take the id-compare path;
// dims outside the universe (possible only for ops the structure never
// interned, which validation rejects elsewhere) fall back to strings.
func (t *tree) fullCoverage(leafID int, dim string) int {
	cov := 1
	if id, ok := t.st.dimID[dim]; ok {
		d := int32(id)
		for m := leafID; m >= 0; m = t.st.parent[m] {
			cov *= t.dimExtentAt(m, d)
		}
		return cov
	}
	for m := leafID; m >= 0; m = t.st.parent[m] {
		cov *= t.nodeSet[m].DimExtent(dim)
	}
	return cov
}

// validateNodeLoops checks one node's loop list: positive extents, and
// every loop over a dimension some operator in the subtree iterates. The
// delta path re-runs it for dirty nodes only.
func validateNodeLoops(t *tree, i int, n *Node) error {
	ld := t.ldim[i]
	mask := t.st.dimMask[i]
	for li, l := range n.Loops {
		if l.Extent < 1 {
			return invalidf("core: node %q loop %s has extent < 1", n.Name, l)
		}
		if ld[li] < 0 || !mask[ld[li]] {
			return invalidf("core: node %q loop over dim %q that no operator in its subtree iterates", n.Name, l.Dim)
		}
	}
	return nil
}

// validateTilingDelta is validateTiling restricted to items whose inputs
// changed since the snapshot tiling: operators whose leaf-to-root path
// contains a dirty node (the coverage product reads exactly that path) and
// nodes with dirty loop lists. Items are visited in the full pass's order
// and clean items cannot fail when the snapshot passed, so the first error
// returned is the one validateTiling would return.
func validateTilingDelta(t *tree, g *workload.Graph, dirty, dirtyUp []bool) error {
	for _, op := range g.Ops {
		leafID, ok := t.st.leafOf[op]
		if !ok {
			return invalidf("core: operator %q has no leaf tile in the tree", op.Name)
		}
		if !dirty[leafID] && !dirtyUp[leafID] {
			continue
		}
		for _, d := range op.Dims {
			if cov := t.fullCoverage(leafID, d.Name); cov != d.Size {
				return invalidf("core: operator %q dim %q tiled to %d, want %d", op.Name, d.Name, cov, d.Size)
			}
		}
	}
	for i, n := range t.nodeSet {
		if !dirty[i] {
			continue
		}
		if err := validateNodeLoops(t, i, n); err != nil {
			return err
		}
	}
	return nil
}

// accountDataMovement runs the inter-tile analysis of Sec 5.1.2: for every
// node it computes the total fills and updates crossing the node's upper
// boundary, honoring confinement (intermediates never cross their LCA) and
// Seq eviction, and attributes the traffic to the memory levels the data
// passes through.
func (e *evaluator) accountDataMovement() error {
	t := e.t
	for i := range t.nodeSet {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		if e.affected != nil && !e.affected[i] {
			e.replayNodeDM(i)
			continue
		}
		if err := e.accountNodeDM(i); err != nil {
			return err
		}
	}
	return nil
}

// accountNodeDM computes and attributes the data movement of one node's
// upper boundary. The delta path calls it for affected nodes only and
// replays cached per-group volumes for the rest.
func (e *evaluator) accountNodeDM(i int) error {
	t, s := e.t, e.s
	pLevel := e.p.pLevel[i]
	if pLevel < 0 {
		return nil // same buffer or root at DRAM: no boundary to cross
	}
	n := t.nodeSet[i]
	var fills, updates float64
	for gi := range t.st.groups[i] {
		grp := &t.st.groups[i][gi]
		if e.p.confRel[i][gi] != confNone {
			continue // confined at or below n: never crosses up
		}
		tf, tu := e.groupDM(i, gi, grp)
		fills += tf
		updates += tu
		e.attributeTensor(grp, n.Level, pLevel, tf, tu)
		if d := e.delta; d != nil {
			d.tf[i][gi], d.tu[i][gi] = tf, tu
		}
	}
	s.nodeFill[i] += fills
	s.nodeUpdate[i] += updates
	if d := e.delta; d != nil {
		d.fills[i], d.updates[i] = fills, updates
	}
	// Attribute to levels: enters n.Level, and — unless the
	// architecture grants the pair direct access (Sec 5.1.2) —
	// passes through every level between it and the parent level.
	s.dm[n.Level].Fill += fills
	s.dm[pLevel].Read += fills
	s.dm[pLevel].Update += updates
	if !e.p.spec.HasDirectAccess(n.Level, pLevel) {
		for l := n.Level + 1; l < pLevel; l++ {
			s.dm[l].Fill += fills
			s.dm[l].Read += fills
			s.dm[l].Update += updates
		}
	}
	return nil
}

// replayNodeDM re-attributes node i's cached per-group volumes without
// recomputing them: when neither i's subtree nor its ancestors changed
// loops, every input to groupDM is unchanged, so the cached float64s are
// the exact values a full pass would produce. Attribution runs in the
// same (node, group) order as accountNodeDM, keeping every floating-point
// accumulation bit-identical to the cold route.
func (e *evaluator) replayNodeDM(i int) {
	t, s, d := e.t, e.s, e.delta
	pLevel := e.p.pLevel[i]
	if pLevel < 0 {
		return
	}
	n := t.nodeSet[i]
	for gi := range t.st.groups[i] {
		if e.p.confRel[i][gi] != confNone {
			continue
		}
		e.attributeTensor(&t.st.groups[i][gi], n.Level, pLevel, d.tf[i][gi], d.tu[i][gi])
	}
	fills, updates := d.fills[i], d.updates[i]
	s.nodeFill[i] += fills
	s.nodeUpdate[i] += updates
	s.dm[n.Level].Fill += fills
	s.dm[pLevel].Read += fills
	s.dm[pLevel].Update += updates
	if !e.p.spec.HasDirectAccess(n.Level, pLevel) {
		for l := n.Level + 1; l < pLevel; l++ {
			s.dm[l].Fill += fills
			s.dm[l].Read += fills
			s.dm[l].Update += updates
		}
	}
}

// groupDM computes one tensor group's fill and update volumes crossing
// node i's upper boundary, the per-group body of Sec 5.1.2.
func (e *evaluator) groupDM(i, gi int, grp *tensorGroup) (tf, tu float64) {
	t := e.t
	if len(grp.reads) > 0 {
		per := e.fillPerExec(i, grp.reads, grp.evicts)
		if grp.evicts {
			// Seq eviction forfeits hierarchical reuse: every
			// relevant re-execution refetches.
			tf = per * t.invocationsMask(i, nil)
		} else {
			tf = per * t.invocationsMask(i, grp.readMask)
		}
	}
	if len(grp.writes) > 0 {
		per := e.fillPerExec(i, grp.writes, grp.evicts)
		tu = per * t.invocationsMask(i, grp.writeMask)
		// Read-modify-write: if the same output slice drains
		// more than once (a reduction split above this node),
		// each extra drain needs a prior refill of partials.
		w := grp.writes[0]
		distinct := float64(t.coveredVolumeI(i, w.leafID, w.iix)) *
			t.invocationsMask(i, w.mask)
		if rmw := tu - distinct; rmw > 0 {
			tf += rmw
		}
	}
	// Sparse tensors travel in compressed form (Sec 7.7
	// extension): traffic scales with density.
	if d, sparse := e.p.density[grp.tensor]; sparse {
		tf *= d
		tu *= d
	}
	return tf, tu
}

// fillPerExec computes the words of the tensor group that cross node n's
// upper boundary inward during one execution of n. Multiple accesses to
// the same tensor share the staged slice, so the maximum over accesses is
// taken. Under Seq eviction the slice is refetched on every time step.
func (e *evaluator) fillPerExec(n int, refs []accessRef, evicted bool) float64 {
	var best float64
	for ri := range refs {
		r := &refs[ri]
		var v float64
		if evicted {
			v = float64(e.t.nodeSet[n].TemporalTrips()) * float64(e.t.sliceVolumeI(n, r.leafID, r.iix))
		} else {
			v = e.perExecDMI(n, r.leafID, r.iix, e.retainI(n, r))
		}
		if v > best {
			best = v
		}
	}
	return best
}

// retainI is the wrap-around retention predicate: a tensor's swept
// footprint is retained when it occupies at most half of the node's
// per-instance buffer (disabled by Options.DisableRetention). The
// compile-time maxWords bound short-circuits the covered-volume walk when
// even the worst-case sweep fits; the exact walk only runs when the bound
// exceeds the budget.
func (e *evaluator) retainI(n int, r *accessRef) bool {
	if e.opts.DisableRetention {
		return false
	}
	cap := e.p.spec.CapacityWords(e.t.nodeSet[n].Level)
	if cap == math.MaxInt64 {
		return true
	}
	if r.maxWords <= cap/2 {
		return true
	}
	return e.t.coveredVolumePerInstanceI(n, r.leafID, r.iix) <= cap/2
}

// attributeTensor records one tensor's share of the traffic crossing a
// node boundary between childLevel and parentLevel. Attributed tensors
// carry a compile-time id into the arena's flat row block, so the steady
// state indexes a slice instead of hashing the tensor name; the map path
// remains as a defensive fallback for unattributed groups.
func (e *evaluator) attributeTensor(grp *tensorGroup, childLevel, parentLevel int, fills, updates float64) {
	var dm []LevelDM
	if tid := grp.tensorID; tid >= 0 && tid < e.s.nTensors {
		L := len(e.s.dm)
		dm = e.s.tensorRows[tid*L : tid*L+L]
	} else {
		var ok bool
		dm, ok = e.s.tensorDM[grp.tensor]
		if !ok {
			dm = make([]LevelDM, len(e.s.dm))
			e.s.tensorDM[grp.tensor] = dm
		}
	}
	dm[childLevel].Fill += fills
	dm[parentLevel].Read += fills
	dm[parentLevel].Update += updates
	if !e.p.spec.HasDirectAccess(childLevel, parentLevel) {
		for l := childLevel + 1; l < parentLevel; l++ {
			dm[l].Fill += fills
			dm[l].Read += fills
			dm[l].Update += updates
		}
	}
}

// temporalRepeats counts how many times child c executes per single
// execution of parent n: the product of n's temporal-loop extents over
// dimensions relevant to c's subtree.
func (e *evaluator) temporalRepeats(n, c int) float64 {
	rel := e.t.st.dimMask[c]
	ld := e.t.ldim[n]
	r := 1.0
	for li, l := range e.t.nodeSet[n].Loops {
		if l.Kind == Temporal && ld[li] >= 0 && rel[ld[li]] {
			r *= float64(l.Extent)
		}
	}
	return r
}

// effBandwidth is the words/cycle available for transfers across node n's
// upper boundary: the narrowest level bandwidth on the path, shared among
// the concurrent sibling contexts created by ancestor spatial loops and
// Para/Pipe bindings.
func (e *evaluator) effBandwidth(n int) float64 {
	pLevel := e.p.pLevel[n]
	if pLevel < 0 {
		return math.Inf(1)
	}
	bw := math.Inf(1)
	for l := e.t.nodeSet[n].Level + 1; l <= pLevel; l++ {
		if w := e.p.spec.WordsPerCycle(l); w < bw {
			bw = w
		}
	}
	// Ancestor spatial loops replicate this node across concurrent
	// instances that share the level's aggregate bandwidth. Para/Pipe
	// siblings are NOT charged against each other, matching the paper's
	// Sec 5.3 formula (pipelined stages rarely contend: the vector
	// stages consume little bandwidth).
	share := 1.0
	for a := e.t.st.parent[n]; a >= 0; a = e.t.st.parent[a] {
		share *= float64(e.t.nodeSet[a].SpatialProduct())
	}
	return bw / share
}

// latency implements the Sec 5.3 recursion: a tile's latency is the maximum
// of its (double-buffered) load phase, its children, and its store phase.
// Children are summed under Seq/Shar and maxed under Para/Pipe, repeated by
// the node's temporal trip counts. With computeOnly, bandwidth is infinite.
func (e *evaluator) latency(n int, computeOnly bool) float64 {
	nd := e.t.nodeSet[n]
	var inner float64
	if nd.IsLeaf() {
		inner = float64(nd.TemporalTrips()) * e.leafIterCost(nd)
		// Gating hardware skips zero iterations of sparse operands.
		inner *= e.p.opDensity[n]
	} else {
		for _, c := range e.t.st.children[n] {
			lc := e.latency(c, computeOnly) * e.temporalRepeats(n, c)
			if nd.Binding.Spatial() {
				if lc > inner {
					inner = lc
				}
			} else {
				inner += lc
			}
		}
	}
	if computeOnly {
		return inner
	}
	inv := e.t.invocationsMask(n, nil)
	bw := e.effBandwidth(n)
	load, store := 0.0, 0.0
	if !math.IsInf(bw, 1) && inv > 0 {
		load = e.s.nodeFill[n] / inv / bw
		store = e.s.nodeUpdate[n] / inv / bw
	}
	return math.Max(load, math.Max(inner, store))
}

// leafIterCost is the cycles one temporal iteration of a leaf takes: MAC
// leaves run one spatial lane per PE per cycle (a leaf's spatial extent may
// span sub-cores, as with convolution channel mappings, but never the
// chip); vector leaves run on the sub-core's vector unit with its lane
// count.
func (e *evaluator) leafIterCost(n *Node) float64 {
	sp := float64(n.SpatialProduct())
	if n.Op.Kind.Vector() {
		lanes := float64(e.p.spec.VectorLanesPerSubcore)
		if lanes < 1 {
			lanes = 1
		}
		return math.Ceil(sp / lanes)
	}
	total := float64(e.p.spec.TotalPEs() * e.p.spec.MACsPerPE)
	return math.Ceil(sp / total)
}
