package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/workload"
)

// ErrInfeasible marks a design point that violates a hardware resource
// limit — over the PE budget, over a level's instance count, or over a
// buffer capacity. errors.Is(err, ErrInfeasible) matches every such error,
// letting callers (mappers pruning candidates, the evaluation service
// picking a status code) separate infeasible points from caller mistakes
// and internal faults.
var ErrInfeasible = errors.New("core: infeasible mapping")

// ErrInvalidMapping marks a structurally broken mapping: a tree that is
// not a complete, exact tiling of the workload on the architecture.
var ErrInvalidMapping = errors.New("core: invalid mapping")

// markedError tags a formatted message with a sentinel for errors.Is
// without altering the message text.
type markedError struct {
	msg  string
	mark error
}

func (e *markedError) Error() string        { return e.msg }
func (e *markedError) Is(target error) bool { return target == e.mark }

func infeasiblef(format string, args ...any) error {
	return &markedError{msg: fmt.Sprintf(format, args...), mark: ErrInfeasible}
}

func invalidf(format string, args ...any) error {
	return &markedError{msg: fmt.Sprintf(format, args...), mark: ErrInvalidMapping}
}

// LevelDM is the data movement recorded at one memory level, in words,
// using the paper's Fig 10d taxonomy: fill is data loaded into this level
// from the level above, read is data sent from this level down to the level
// below, and update is data written back into this level from below.
type LevelDM struct {
	Fill   float64
	Read   float64
	Update float64
}

// Total is fill+read+update: the access count the energy model charges.
func (l LevelDM) Total() float64 { return l.Fill + l.Read + l.Update }

// Result is the outcome of evaluating one fusion dataflow on one
// architecture: the performance-critical metrics of Sec 5 plus the derived
// latency, energy, utilization and bandwidth figures of Sec 7.
type Result struct {
	// Cycles is the modeled execution latency.
	Cycles float64
	// ComputeCycles is the latency under infinite memory bandwidth — the
	// denominator of the Sec 7.5 slow-down metric.
	ComputeCycles float64

	// DM is per-level data movement, indexed like spec.Levels.
	DM []LevelDM

	// TensorDM breaks DM down per tensor, for analysis and debugging.
	TensorDM map[string][]LevelDM

	// MACs and VectorOps are the workload's inherent op counts.
	MACs      float64
	VectorOps float64

	// Energy is the per-level/compute energy breakdown.
	Energy energy.Breakdown

	// PEsUsed is the Sec 5.2 NumPE of the root; TotalPEs the chip total.
	PEsUsed  int
	TotalPEs int

	// UnitUsage[l] is how many level-l instances the dataflow occupies;
	// Utilization is the sub-core (level 1) occupancy ratio of Fig 11d.
	UnitUsage   []int
	Utilization float64

	// FootprintWords is the per-instance buffer occupancy per level.
	FootprintWords []int64

	// SlowDown[l] is max(level-l access latency / compute latency, 1),
	// the Sec 7.5 metric; BandwidthReqGBs[l] is the minimum aggregate
	// bandwidth at level l for slow-down 1 (Fig 14).
	SlowDown        []float64
	BandwidthReqGBs []float64
}

// DRAMTraffic is the off-chip data movement in words (reads + writes at the
// DRAM level), the Fig 10b metric.
func (r *Result) DRAMTraffic() float64 {
	l := r.DM[len(r.DM)-1]
	return l.Read + l.Update
}

// OnChipTraffic sums data movement at all on-chip levels above the
// registers (the Fig 10c metric).
func (r *Result) OnChipTraffic() float64 {
	var v float64
	for i := 1; i < len(r.DM)-1; i++ {
		v += r.DM[i].Total()
	}
	return v
}

// LevelTraffic is the total data movement at one level.
func (r *Result) LevelTraffic(level int) float64 { return r.DM[level].Total() }

// EnergyPJ is the total modeled energy.
func (r *Result) EnergyPJ() float64 { return r.Energy.TotalPJ() }

// CapacityError reports a buffer level whose per-instance footprint exceeds
// its capacity — the OOM condition of Table 7 and Table 8.
type CapacityError struct {
	Level     int
	LevelName string
	NeedWords int64
	HaveWords int64
}

// Error implements error.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("core: level %d (%s) over capacity: need %d words, have %d",
		e.Level, e.LevelName, e.NeedWords, e.HaveWords)
}

// Is matches ErrInfeasible: a capacity violation is one of the resource
// limits that make a design point infeasible.
func (e *CapacityError) Is(target error) bool { return target == ErrInfeasible }

// IsOOM reports whether the error is a buffer-capacity violation.
func IsOOM(err error) bool {
	_, ok := err.(*CapacityError)
	return ok
}

// Options tunes evaluation.
type Options struct {
	// SkipCapacityCheck evaluates even when buffers overflow (Table 7's
	// "no memory limit" scenario).
	SkipCapacityCheck bool
	// SkipPECheck evaluates even when the spatial mapping exceeds the
	// PE array.
	SkipPECheck bool
	// DisableRetention turns off wrap-around retention, reverting to the
	// paper's conservative assumption that "data replacement happens for
	// every outer iteration" — the source of its small-tile
	// overestimation (Fig 8d discussion). Used by the ablation study.
	DisableRetention bool
}

// evaluator carries the per-evaluation state. All mutable analysis state
// lives here, never on the shared Program or its compiled tree, which is
// what makes concurrent Evaluate calls on one Program safe.
type evaluator struct {
	ctx  context.Context
	p    *Program
	t    *tree
	opts Options

	// nodeFill/nodeUpdate are total words crossing each node's upper
	// boundary over the whole execution, indexed by pre-order node id.
	nodeFill   []float64
	nodeUpdate []float64
	dm         []LevelDM
	tensorDM   map[string][]LevelDM
}

// Evaluate runs TileFlow's tree-based analysis for the dataflow rooted at
// root over graph g on architecture spec, returning the modeled metrics.
// It is the one-shot composition of Compile and Program.Evaluate; callers
// evaluating many tilings of one tree structure should Compile once and
// re-evaluate through the Program.
func Evaluate(root *Node, g *workload.Graph, spec *arch.Spec, opts Options) (*Result, error) {
	return EvaluateContext(context.Background(), root, g, spec, opts)
}

// EvaluateContext is Evaluate with cancellation: the analysis aborts with
// ctx.Err() at phase boundaries and between per-node data-movement passes,
// so a service can bound the latency of one evaluation.
func EvaluateContext(ctx context.Context, root *Node, g *workload.Graph, spec *arch.Spec, opts Options) (*Result, error) {
	p, err := Compile(root, g, spec)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(ctx, opts)
}

// run executes the tiling-dependent analysis phases — the Evaluate half of
// the Compile → Evaluate pipeline — on the evaluator's bound tree.
func (e *evaluator) run() (*Result, error) {
	t, spec, opts := e.t, e.p.spec, e.opts
	if err := validateTiling(t, e.p.g); err != nil {
		return nil, err
	}
	if err := e.accountDataMovement(); err != nil {
		return nil, err
	}

	res := &Result{
		DM:        e.dm,
		TensorDM:  e.tensorDM,
		MACs:      e.p.macs,
		VectorOps: e.p.vops,
		PEsUsed:   NumPE(t.root),
		TotalPEs:  spec.TotalPEs(),
	}

	res.UnitUsage = unitUsage(t.root, spec.NumLevels())
	if inst := spec.Instances(1); inst > 0 {
		u := res.UnitUsage[1]
		if u > inst {
			u = inst
		}
		res.Utilization = float64(u) / float64(inst)
	}
	if !opts.SkipPECheck {
		if res.PEsUsed > res.TotalPEs {
			return nil, infeasiblef("core: mapping uses %d PEs, chip has %d", res.PEsUsed, res.TotalPEs)
		}
		for l := 0; l < spec.DRAMLevel(); l++ {
			if inst := spec.Instances(l); res.UnitUsage[l] > inst {
				return nil, infeasiblef("core: mapping occupies %d level-%d (%s) instances, chip has %d",
					res.UnitUsage[l], l, spec.Levels[l].Name, inst)
			}
		}
	}

	res.FootprintWords = t.footprint(t.root, spec.NumLevels(), e.p.confine, e.p.density)
	if !opts.SkipCapacityCheck {
		for l := 0; l < spec.DRAMLevel(); l++ {
			if need, have := res.FootprintWords[l], spec.CapacityWords(l); need > have {
				return nil, &CapacityError{Level: l, LevelName: spec.Levels[l].Name, NeedWords: need, HaveWords: have}
			}
		}
	}

	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	res.Cycles = e.latency(t.root, false)
	res.ComputeCycles = e.latency(t.root, true)

	// Energy: per-level accesses plus register operand traffic for the
	// compute itself (two operand reads per op).
	accesses := make([]float64, spec.NumLevels())
	for i := range e.dm {
		accesses[i] = e.dm[i].Total()
	}
	accesses[0] += 2 * (res.MACs + res.VectorOps)
	res.Energy = e.p.etab.Estimate(accesses, res.MACs, res.VectorOps)

	// Slow-down and bandwidth requirement per level (Sec 7.5, Fig 14).
	res.SlowDown = make([]float64, spec.NumLevels())
	res.BandwidthReqGBs = make([]float64, spec.NumLevels())
	for l := 1; l < spec.NumLevels(); l++ {
		traffic := e.dm[l].Total()
		accessCycles := 0.0
		if wpc := spec.WordsPerCycle(l); wpc > 0 {
			accessCycles = traffic / wpc
		}
		sd := 1.0
		if res.ComputeCycles > 0 && accessCycles/res.ComputeCycles > 1 {
			sd = accessCycles / res.ComputeCycles
		}
		res.SlowDown[l] = sd
		if res.ComputeCycles > 0 {
			res.BandwidthReqGBs[l] = traffic * float64(spec.WordBytes) * spec.FreqGHz / res.ComputeCycles
		}
	}
	return res, nil
}

// densityOf snapshots the graph's per-tensor densities for the footprint
// computation (only non-dense entries matter).
func densityOf(g *workload.Graph) map[string]float64 {
	out := map[string]float64{}
	for name, t := range g.Tensors {
		if d := t.EffDensity(); d < 1 {
			out[name] = d
		}
	}
	return out
}

// macOps and vectorOps count effective operations: on gating hardware a
// sparse operand skips its zero iterations, so counts scale with the
// product of read densities (1.0 when fully dense).
func macOps(g *workload.Graph) float64 {
	var n float64
	for _, op := range g.Ops {
		if op.Kind == workload.KindMAC {
			n += float64(op.OpCount()) * g.OpDensity(op)
		}
	}
	return n
}

func vectorOps(g *workload.Graph) float64 {
	var n float64
	for _, op := range g.Ops {
		if op.Kind.Vector() {
			n += float64(op.OpCount()) * g.OpDensity(op)
		}
	}
	return n
}

// validateStructure checks the tiling-independent half of mapping
// legality at compile time: every operator has a leaf tile, and every
// node's level exists on the architecture.
func validateStructure(t *tree, g *workload.Graph, spec *arch.Spec) error {
	for _, op := range g.Ops {
		if t.leafOf[op] == nil {
			return invalidf("core: operator %q has no leaf tile in the tree", op.Name)
		}
	}
	for _, n := range t.nodeSet {
		if n.Level < 0 || n.Level >= spec.NumLevels() {
			return invalidf("core: node %q level %d outside architecture with %d levels", n.Name, n.Level, spec.NumLevels())
		}
	}
	return nil
}

// validateTiling checks the loop nests of one tiling against the compiled
// structure: the tree must be a complete, exact tiling of the graph. It
// runs on every Evaluate, since re-binds change only the loops.
func validateTiling(t *tree, g *workload.Graph) error {
	for _, op := range g.Ops {
		leaf := t.leafOf[op]
		if leaf == nil {
			return invalidf("core: operator %q has no leaf tile in the tree", op.Name)
		}
		for _, d := range op.Dims {
			cov := 1
			for m := leaf; m != nil; m = t.parent[m] {
				cov *= m.DimExtent(d.Name)
			}
			if cov != d.Size {
				return invalidf("core: operator %q dim %q tiled to %d, want %d", op.Name, d.Name, cov, d.Size)
			}
		}
	}
	for _, n := range t.nodeSet {
		for _, l := range n.Loops {
			if l.Extent < 1 {
				return invalidf("core: node %q loop %s has extent < 1", n.Name, l)
			}
			if !t.subtreeDims(n)[l.Dim] {
				return invalidf("core: node %q loop over dim %q that no operator in its subtree iterates", n.Name, l.Dim)
			}
		}
	}
	return nil
}

// accountDataMovement runs the inter-tile analysis of Sec 5.1.2: for every
// node it computes the total fills and updates crossing the node's upper
// boundary, honoring confinement (intermediates never cross their LCA) and
// Seq eviction, and attributes the traffic to the memory levels the data
// passes through.
func (e *evaluator) accountDataMovement() error {
	t := e.t
	for i, n := range t.nodeSet {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		pLevel, ok := e.parentLevel(n)
		if !ok {
			continue // same buffer or root at DRAM: no boundary to cross
		}
		var fills, updates float64
		for gi := range t.st.groups[i] {
			grp := &t.st.groups[i][gi]
			if lca, ok := e.p.confine[grp.tensor]; ok && t.subtreeContains(n, lca) {
				continue // confined at or below n: never crosses up
			}
			var tf, tu float64
			if len(grp.reads) > 0 {
				per := e.fillPerExec(n, grp.reads, grp.evicts)
				if grp.evicts {
					// Seq eviction forfeits hierarchical reuse: every
					// relevant re-execution refetches.
					tf = per * t.relevantInvocations(n)
				} else {
					tf = per * t.invocationsWhere(n, grp.readDims)
				}
			}
			if len(grp.writes) > 0 {
				per := e.fillPerExec(n, grp.writes, grp.evicts)
				tu = per * t.invocationsWhere(n, grp.writeDims)
				// Read-modify-write: if the same output slice drains
				// more than once (a reduction split above this node),
				// each extra drain needs a prior refill of partials.
				w := grp.writes[0]
				wleaf := t.nodeSet[w.leafID]
				distinct := float64(t.coveredVolume(n, wleaf, w.acc)) *
					t.invocationsWhere(n, w.dims)
				if rmw := tu - distinct; rmw > 0 {
					tf += rmw
				}
			}
			// Sparse tensors travel in compressed form (Sec 7.7
			// extension): traffic scales with density.
			if d, sparse := e.p.density[grp.tensor]; sparse {
				tf *= d
				tu *= d
			}
			fills += tf
			updates += tu
			e.attributeTensor(grp.tensor, n.Level, pLevel, tf, tu)
		}
		e.nodeFill[i] += fills
		e.nodeUpdate[i] += updates
		// Attribute to levels: enters n.Level, and — unless the
		// architecture grants the pair direct access (Sec 5.1.2) —
		// passes through every level between it and the parent level.
		e.dm[n.Level].Fill += fills
		e.dm[pLevel].Read += fills
		e.dm[pLevel].Update += updates
		if !e.p.spec.HasDirectAccess(n.Level, pLevel) {
			for l := n.Level + 1; l < pLevel; l++ {
				e.dm[l].Fill += fills
				e.dm[l].Read += fills
				e.dm[l].Update += updates
			}
		}
	}
	return nil
}

// fillPerExec computes the words of the tensor group that cross node n's
// upper boundary inward during one execution of n. Multiple accesses to
// the same tensor share the staged slice, so the maximum over accesses is
// taken. Under Seq eviction the slice is refetched on every time step.
func (e *evaluator) fillPerExec(n *Node, refs []accessRef, evicted bool) float64 {
	var best float64
	for _, r := range refs {
		leaf := e.t.nodeSet[r.leafID]
		var v float64
		if evicted {
			v = float64(n.TemporalTrips()) * float64(e.t.sliceVolume(n, leaf, r.acc))
		} else {
			v = e.t.perExecDM(n, leaf, r.acc, e.retain(n, leaf, r.acc))
		}
		if v > best {
			best = v
		}
	}
	return best
}

// retain is the wrap-around retention predicate: a tensor's swept
// footprint is retained when it occupies at most half of the node's
// per-instance buffer (disabled by Options.DisableRetention).
func (e *evaluator) retain(n, leaf *Node, acc workload.Access) bool {
	if e.opts.DisableRetention {
		return false
	}
	cap := e.p.spec.CapacityWords(n.Level)
	if cap == math.MaxInt64 {
		return true
	}
	return e.t.coveredVolumePerInstance(n, leaf, acc) <= cap/2
}

// parentLevel reports the memory level node n loads from across its upper
// boundary. A root tile below the DRAM level has an implicit DRAM parent
// (the paper's trees end at the outermost on-chip level; off-chip memory is
// always above them). A child at its parent's own level shares the buffer:
// no boundary exists.
func (e *evaluator) parentLevel(n *Node) (int, bool) {
	p := e.t.parent[n]
	if p == nil {
		if n.Level < e.p.spec.DRAMLevel() {
			return e.p.spec.DRAMLevel(), true
		}
		return 0, false
	}
	if p.Level == n.Level {
		return 0, false
	}
	return p.Level, true
}

// attributeTensor records one tensor's share of the traffic crossing a
// node boundary between childLevel and parentLevel.
func (e *evaluator) attributeTensor(tensor string, childLevel, parentLevel int, fills, updates float64) {
	dm, ok := e.tensorDM[tensor]
	if !ok {
		dm = make([]LevelDM, len(e.dm))
		e.tensorDM[tensor] = dm
	}
	dm[childLevel].Fill += fills
	dm[parentLevel].Read += fills
	dm[parentLevel].Update += updates
	if !e.p.spec.HasDirectAccess(childLevel, parentLevel) {
		for l := childLevel + 1; l < parentLevel; l++ {
			dm[l].Fill += fills
			dm[l].Read += fills
			dm[l].Update += updates
		}
	}
}

// temporalRepeats counts how many times child c executes per single
// execution of parent n: the product of n's temporal-loop extents over
// dimensions relevant to c's subtree.
func (e *evaluator) temporalRepeats(n, c *Node) float64 {
	rel := e.t.subtreeDims(c)
	r := 1.0
	for _, l := range n.Loops {
		if l.Kind == Temporal && rel[l.Dim] {
			r *= float64(l.Extent)
		}
	}
	return r
}

// effBandwidth is the words/cycle available for transfers across node n's
// upper boundary: the narrowest level bandwidth on the path, shared among
// the concurrent sibling contexts created by ancestor spatial loops and
// Para/Pipe bindings.
func (e *evaluator) effBandwidth(n *Node) float64 {
	pLevel, ok := e.parentLevel(n)
	if !ok {
		return math.Inf(1)
	}
	bw := math.Inf(1)
	for l := n.Level + 1; l <= pLevel; l++ {
		if w := e.p.spec.WordsPerCycle(l); w < bw {
			bw = w
		}
	}
	// Ancestor spatial loops replicate this node across concurrent
	// instances that share the level's aggregate bandwidth. Para/Pipe
	// siblings are NOT charged against each other, matching the paper's
	// Sec 5.3 formula (pipelined stages rarely contend: the vector
	// stages consume little bandwidth).
	share := 1.0
	for a := e.t.parent[n]; a != nil; a = e.t.parent[a] {
		share *= float64(a.SpatialProduct())
	}
	return bw / share
}

// latency implements the Sec 5.3 recursion: a tile's latency is the maximum
// of its (double-buffered) load phase, its children, and its store phase.
// Children are summed under Seq/Shar and maxed under Para/Pipe, repeated by
// the node's temporal trip counts. With computeOnly, bandwidth is infinite.
func (e *evaluator) latency(n *Node, computeOnly bool) float64 {
	var inner float64
	if n.IsLeaf() {
		inner = float64(n.TemporalTrips()) * e.leafIterCost(n)
		// Gating hardware skips zero iterations of sparse operands.
		inner *= e.p.opDensity[e.t.id[n]]
	} else {
		for _, c := range n.Children {
			lc := e.latency(c, computeOnly) * e.temporalRepeats(n, c)
			if n.Binding.Spatial() {
				if lc > inner {
					inner = lc
				}
			} else {
				inner += lc
			}
		}
	}
	if computeOnly {
		return inner
	}
	id := e.t.id[n]
	inv := e.t.relevantInvocations(n)
	bw := e.effBandwidth(n)
	load, store := 0.0, 0.0
	if !math.IsInf(bw, 1) && inv > 0 {
		load = e.nodeFill[id] / inv / bw
		store = e.nodeUpdate[id] / inv / bw
	}
	return math.Max(load, math.Max(inner, store))
}

// leafIterCost is the cycles one temporal iteration of a leaf takes: MAC
// leaves run one spatial lane per PE per cycle (a leaf's spatial extent may
// span sub-cores, as with convolution channel mappings, but never the
// chip); vector leaves run on the sub-core's vector unit with its lane
// count.
func (e *evaluator) leafIterCost(n *Node) float64 {
	sp := float64(n.SpatialProduct())
	if n.Op.Kind.Vector() {
		lanes := float64(e.p.spec.VectorLanesPerSubcore)
		if lanes < 1 {
			lanes = 1
		}
		return math.Ceil(sp / lanes)
	}
	total := float64(e.p.spec.TotalPEs() * e.p.spec.MACsPerPE)
	return math.Ceil(sp / total)
}
