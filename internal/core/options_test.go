package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// TestDirectAccessSkipsIntermediateLevels checks the Sec 5.1.2 distinction:
// with a direct L0↔DRAM datapath on the Cloud hierarchy, traffic for a
// leaf-fused mapping no longer passes through L1/L2.
func TestDirectAccessSkipsIntermediateLevels(t *testing.T) {
	g := workload.Matmul(64, 64, 64)
	op := g.Ops[0]
	// A leaf directly under the DRAM-level root: transfers span levels
	// 0..3.
	build := func() *Node {
		leaf := Leaf("leaf", op, S("m", 16), S("n", 16), T("m", 4), T("n", 4), T("k", 64))
		return Tile("root", 3, Seq, nil, leaf)
	}
	routed, err := Evaluate(build(), g, arch.Cloud(), Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Evaluate(build(), g, arch.Cloud().WithDirectAccess(0, 3), Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Routed: L1 and L2 carry pass-through traffic. Direct: they are idle.
	if routed.DM[1].Total() == 0 || routed.DM[2].Total() == 0 {
		t.Errorf("routed traffic should pass through L1/L2: %+v", routed.DM)
	}
	if direct.DM[1].Total() != 0 || direct.DM[2].Total() != 0 {
		t.Errorf("direct access should bypass L1/L2: %+v", direct.DM)
	}
	// End-point traffic is identical either way.
	if routed.DM[0].Fill != direct.DM[0].Fill || routed.DM[3].Read != direct.DM[3].Read {
		t.Errorf("endpoint traffic changed: %+v vs %+v", routed.DM, direct.DM)
	}
	// Bypassing the hierarchy saves energy.
	if direct.EnergyPJ() >= routed.EnergyPJ() {
		t.Errorf("direct energy %v not below routed %v", direct.EnergyPJ(), routed.EnergyPJ())
	}
}

// TestDisableRetentionOverestimates reproduces the paper's Fig 8d
// observation in ablation form: without wrap-around retention the model
// assumes replacement on every outer iteration, so data movement (and with
// it energy) can only grow, and it grows most for small tiles.
func TestDisableRetentionOverestimates(t *testing.T) {
	g := workload.Matmul(256, 256, 256)
	op := g.Ops[0]
	spec := arch.Validation()
	build := func(sm int) *Node {
		leaf := Leaf("leaf", op, S("m", sm), S("n", sm))
		l1 := Tile("l1", 1, Seq, []Loop{T("m", 256/sm), T("n", 256/sm), T("k", 256)}, leaf)
		return Tile("root", 2, Seq, nil, l1)
	}
	overRatio := func(sm int) float64 {
		with, err := Evaluate(build(sm), g, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		without, err := Evaluate(build(sm), g, spec, Options{SkipCapacityCheck: true, DisableRetention: true})
		if err != nil {
			t.Fatal(err)
		}
		if without.DRAMTraffic() < with.DRAMTraffic()-0.5 {
			t.Fatalf("retention off reduced traffic?! %v < %v", without.DRAMTraffic(), with.DRAMTraffic())
		}
		return without.EnergyPJ() / with.EnergyPJ()
	}
	small := overRatio(4)  // small tiles: heavy overestimation
	large := overRatio(16) // large tiles: mild
	if small <= 1.0 {
		t.Errorf("no overestimation for small tiles: ratio %v", small)
	}
	if small <= large {
		t.Errorf("overestimation should be worst for small tiles: small %v vs large %v", small, large)
	}
}
