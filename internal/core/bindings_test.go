package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// twoOpChain builds A[i,j] = f(X), B[i,j] = g(A) — a producer/consumer pair
// for binding-semantics tests.
func twoOpChain(i, j int) *workload.Graph {
	opA := &workload.Operator{
		Name: "P", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "j", Size: j}, {Name: "k", Size: 16}},
		Reads: []workload.Access{
			{Tensor: "X", Index: []workload.Index{workload.I("i"), workload.I("k")}},
			{Tensor: "W", Index: []workload.Index{workload.I("k"), workload.I("j")}},
		},
		Write: workload.Access{Tensor: "Mid", Index: []workload.Index{workload.I("i"), workload.I("j")}},
	}
	opB := &workload.Operator{
		Name: "C", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "j", Size: j}, {Name: "n", Size: 16}},
		Reads: []workload.Access{
			{Tensor: "Mid", Index: []workload.Index{workload.I("i"), workload.I("j")}},
			{Tensor: "V", Index: []workload.Index{workload.I("j"), workload.I("n")}},
		},
		Write: workload.Access{Tensor: "Out", Index: []workload.Index{workload.I("i"), workload.I("n")}},
	}
	return workload.MustGraph("pair", workload.WordBytes, opA, opB)
}

func pairTree(g *workload.Graph, binding Binding, trips int) *Node {
	leafP := Leaf("p", g.Op("P"), S("i", 16), T("j", 64/trips), T("k", 16))
	leafC := Leaf("c", g.Op("C"), S("i", 16), T("j", 64/trips), T("n", 16))
	stage := Tile("stage", 1, binding, []Loop{T("i", 4), T("j", trips)}, leafP, leafC)
	return Tile("root", 2, Seq, nil, stage)
}

func evalPair(t *testing.T, binding Binding, trips int) *Result {
	t.Helper()
	g := twoOpChain(64, 64)
	res, err := Evaluate(pairTree(g, binding, trips), g, arch.Edge(), Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSeqEvictionCostsMoreThanShar checks the Table 1 semantics: Seq evicts
// slices the following tile does not need, so tensors used by only one of
// the two tiles (X, W, V) are refetched every step, while Shar retains
// them. DRAM traffic under Seq must strictly exceed Shar's.
func TestSeqEvictionCostsMoreThanShar(t *testing.T) {
	seq := evalPair(t, Seq, 4)
	shar := evalPair(t, Shar, 4)
	if seq.DRAMTraffic() <= shar.DRAMTraffic() {
		t.Errorf("Seq DRAM %v not above Shar %v", seq.DRAMTraffic(), shar.DRAMTraffic())
	}
	// The intermediate is confined under both: zero DRAM traffic.
	for _, r := range []*Result{seq, shar} {
		if dm := r.TensorDM["Mid"]; dm != nil && dm[2].Total() != 0 {
			t.Errorf("intermediate leaked to DRAM: %v", dm[2])
		}
	}
}

// TestPipeOverlapsLatency checks that Pipe runs the two tiles concurrently:
// its compute-only latency must be below Seq's (which sums them) and at
// least the larger tile's share.
func TestPipeOverlapsLatency(t *testing.T) {
	seq := evalPair(t, Seq, 4)
	pipe := evalPair(t, Pipe, 4)
	if pipe.ComputeCycles >= seq.ComputeCycles {
		t.Errorf("Pipe compute %v not below Seq %v", pipe.ComputeCycles, seq.ComputeCycles)
	}
	if pipe.ComputeCycles < seq.ComputeCycles/2 {
		t.Errorf("Pipe compute %v below half of Seq %v: two equal tiles can at best halve", pipe.ComputeCycles, seq.ComputeCycles)
	}
}

// TestParaSumsPEs checks the Sec 5.2 NumPE recursion: Para/Pipe sum
// children, Seq/Shar take the max.
func TestParaSumsPEs(t *testing.T) {
	g := twoOpChain(64, 64)
	for _, c := range []struct {
		b    Binding
		want int
	}{{Seq, 16}, {Shar, 16}, {Para, 32}, {Pipe, 32}} {
		root := pairTree(g, c.b, 4)
		if got := NumPE(root); got != c.want {
			t.Errorf("%v: NumPE = %d, want %d", c.b, got, c.want)
		}
	}
}

// TestFootprintSharStagesMore checks that a Shar stage's buffer must hold
// both tiles' tensors at once while Seq time-shares: the level-1 footprint
// under Shar is at least Seq's.
func TestFootprintSharStagesMore(t *testing.T) {
	seq := evalPair(t, Seq, 4)
	shar := evalPair(t, Shar, 4)
	if shar.FootprintWords[1] < seq.FootprintWords[1] {
		t.Errorf("Shar footprint %v below Seq %v", shar.FootprintWords[1], seq.FootprintWords[1])
	}
}

// TestUnitUsagePipeSubtrees checks that pipelined subtrees rooted at level
// 1 occupy separate level-1 instances, while pipelined leaves under one
// stage share it.
func TestUnitUsagePipeSubtrees(t *testing.T) {
	g := twoOpChain(64, 64)
	// Variant 1: two leaves under one L1 stage.
	shared := pairTree(g, Pipe, 4)
	// Variant 2: each leaf in its own L1 node under a Pipe parent.
	leafP := Leaf("p", g.Op("P"), S("i", 16), T("j", 16), T("k", 16))
	leafC := Leaf("c", g.Op("C"), S("i", 16), T("j", 16), T("n", 16))
	split := Tile("root", 2, Pipe, []Loop{T("i", 4), T("j", 4)},
		Tile("sp", 1, Seq, nil, leafP),
		Tile("sc", 1, Seq, nil, leafC),
	)
	spec := arch.Cloud()
	r1, err := Evaluate(shared, g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(split, g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.UnitUsage[1] != 1 {
		t.Errorf("shared-stage L1 usage = %d, want 1", r1.UnitUsage[1])
	}
	if r2.UnitUsage[1] != 2 {
		t.Errorf("split-stage L1 usage = %d, want 2", r2.UnitUsage[1])
	}
}

// TestRMWChargesPartialSums: splitting a reduction above the buffer level
// forces partial-sum drains and refills.
func TestRMWChargesPartialSums(t *testing.T) {
	g := workload.Matmul(64, 64, 64)
	op := g.Ops[0]
	spec := arch.Edge()
	build := func(kOuter int) *Node {
		leaf := Leaf("leaf", op, S("m", 16), S("n", 16), T("k", 64/kOuter))
		l1 := Tile("l1", 1, Seq, []Loop{T("m", 4), T("n", 4)}, leaf)
		return Tile("root", 2, Seq, []Loop{T("k", kOuter)}, l1)
	}
	noSplit, err := Evaluate(build(1), g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Evaluate(build(4), g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	cdm := func(r *Result) LevelDM { return r.TensorDM["C"][2] }
	if cdm(split).Update <= cdm(noSplit).Update {
		t.Errorf("k-split updates %v not above unsplit %v", cdm(split).Update, cdm(noSplit).Update)
	}
	// Partials must also be re-read: DRAM reads of C appear only under
	// the split (without one the only DRAM activity is the final drain).
	if cdm(noSplit).Read != 0 {
		t.Errorf("unsplit C has unexpected DRAM reads: %+v", cdm(noSplit))
	}
	if cdm(split).Read <= 0 {
		t.Errorf("split C missing RMW refills: %+v", cdm(split))
	}
}

// TestTemporalVsSpatialLoops: converting a temporal loop to spatial keeps
// total work but reduces latency and increases PE usage.
func TestTemporalVsSpatialLoops(t *testing.T) {
	g := workload.Matmul(64, 64, 64)
	op := g.Ops[0]
	spec := arch.Edge()
	temporal := Tile("root", 2, Seq, nil,
		Tile("l1", 1, Seq, nil, Leaf("leaf", op, T("m", 4), S("m", 16), S("n", 16), T("n", 4), T("k", 64))))
	spatial := Tile("root", 2, Seq, nil,
		Tile("l1", 1, Seq, nil, Leaf("leaf", op, S("m", 64), S("n", 64), T("k", 64))))
	rt, err := Evaluate(temporal, g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Evaluate(spatial, g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs.ComputeCycles >= rt.ComputeCycles {
		t.Errorf("spatial compute %v not below temporal %v", rs.ComputeCycles, rt.ComputeCycles)
	}
	if NumPE(spatial) <= NumPE(temporal) {
		t.Errorf("spatial PEs %d not above temporal %d", NumPE(spatial), NumPE(temporal))
	}
}

// TestUtilizationReflectsSpatialSplits on the Cloud hierarchy.
func TestUtilizationReflectsSpatialSplits(t *testing.T) {
	g := twoOpChain(64, 64)
	spec := arch.Cloud()
	build := func(sub int) *Node {
		leafP := Leaf("p", g.Op("P"), S("i", 4), T("j", 16), T("k", 16))
		leafC := Leaf("c", g.Op("C"), S("i", 4), T("j", 16), T("n", 16))
		loops := []Loop{T("j", 4)}
		if sub > 1 {
			loops = append([]Loop{S("i", sub)}, loops...)
		}
		stage := Tile("stage", 1, Shar, loops, leafP, leafC)
		mid := Tile("mid", 2, Seq, []Loop{T("i", 16/sub)}, stage)
		return Tile("root", 3, Seq, nil, mid)
	}
	r1, err := Evaluate(build(1), g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Evaluate(build(4), g, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Utilization <= r1.Utilization {
		t.Errorf("4-way sub-core split utilization %v not above 1-way %v", r4.Utilization, r1.Utilization)
	}
}
