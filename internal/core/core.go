package core
