package core

// Monotonicity metadata: how each static rule's violation set behaves as a
// single loop extent in the tree grows, everything else held fixed. The
// search-space analyzer (internal/spaceck) uses the declarations to order
// its probes — high-pressure corners first when hunting refutations of a
// monotone-increasing rule, low-pressure corners first when hunting
// witnesses — and DESIGN.md §12 builds its soundness argument on them. The
// declarations are pinned against brute force in monotone_test.go: for
// every rule the observed violation set over a swept extent must be
// upward-closed, downward-closed, constant, or (for MonoExact) provably
// neither.

// Monotonicity classifies one rule's violation predicate as a function of
// any single loop extent.
type Monotonicity int

const (
	// MonoIndependent: the rule never reads loop extents; its verdict is a
	// function of tree structure, bindings, and the architecture alone.
	MonoIndependent Monotonicity = iota
	// MonoIncreasing: the violation set is upward-closed — if the rule
	// fires at extent x it fires at every extent y >= x (resource usage is
	// non-decreasing in every extent, so exceeding a budget is permanent).
	MonoIncreasing
	// MonoDecreasing: the violation set is downward-closed — if the rule
	// fires at extent x it fires at every extent y <= x.
	MonoDecreasing
	// MonoExact: an equality or divisor constraint; the violation set is
	// neither upward- nor downward-closed in general.
	MonoExact
)

// String implements fmt.Stringer.
func (m Monotonicity) String() string {
	switch m {
	case MonoIndependent:
		return "independent"
	case MonoIncreasing:
		return "increasing"
	case MonoDecreasing:
		return "decreasing"
	case MonoExact:
		return "exact"
	}
	return "unknown"
}

// ruleMono declares the monotonicity of every static rule. The table is
// exhaustive over the Rule* constants; RuleMonotonicity panics on an
// unknown key so a rule added without a declaration fails loudly in tests
// rather than silently defaulting.
var ruleMono = map[string]Monotonicity{
	// Structural rules look only at the node tree, operators and levels.
	RuleArch:          MonoIndependent,
	RuleLeafChildren:  MonoIndependent,
	RuleDupOp:         MonoIndependent,
	RuleInteriorEmpty: MonoIndependent,
	RuleLevelOrder:    MonoIndependent,
	RuleOpNoLeaf:      MonoIndependent,
	RuleLevelRange:    MonoIndependent,
	// A loop over a foreign dim is foreign at any extent.
	RuleLoopDim: MonoIndependent,

	// extent < 1 is downward-closed.
	RuleLoopExtent: MonoDecreasing,

	// The leaf-to-root product must equal the dim size exactly; the
	// violation set has holes at every divisor completion.
	RuleCoverage: MonoExact,

	// Spatial fanout, instance occupancy, and staged footprints are all
	// products of (subsets of) the extents, so usage is non-decreasing in
	// every extent and budget overruns are upward-closed.
	RulePEBudget:  MonoIncreasing,
	RuleUnitUsage: MonoIncreasing,
	RuleCapacity:  MonoIncreasing,
}

// RuleMonotonicity reports the declared monotonicity of a static rule's
// violation predicate in any single loop extent. It panics on a rule key
// outside the Rule* constants.
func RuleMonotonicity(rule string) Monotonicity {
	m, ok := ruleMono[rule]
	if !ok {
		panic("core: no monotonicity declared for rule " + rule)
	}
	return m
}

// RuleKeys lists every static rule key in a stable order, for exhaustive
// table-driven tests over the rule set.
func RuleKeys() []string {
	return []string{
		RuleArch,
		RuleLeafChildren,
		RuleDupOp,
		RuleInteriorEmpty,
		RuleLevelOrder,
		RuleOpNoLeaf,
		RuleLevelRange,
		RuleCoverage,
		RuleLoopExtent,
		RuleLoopDim,
		RulePEBudget,
		RuleUnitUsage,
		RuleCapacity,
	}
}
