package core_test

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// benchDesignPoint is the canonical benchmark design point (matching the
// repo-root BenchmarkEvaluate): FLAT-RGran over Bert-S attention on the
// Edge accelerator, default factors.
func benchDesignPoint(tb testing.TB) (*core.Node, *workload.Graph, *arch.Spec) {
	tb.Helper()
	shape, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		tb.Fatal("attention shape Bert-S not found")
	}
	spec := arch.Edge()
	df := dataflows.FLATRGran(shape, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		tb.Fatal(err)
	}
	return root, df.Graph(), spec
}

// BenchmarkEvaluateCold is the one-shot pipeline: Compile + Evaluate per
// call, what core.Evaluate costs a caller that never reuses structure.
func BenchmarkEvaluateCold(b *testing.B) {
	root, g, spec := benchDesignPoint(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(root, g, spec, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateCompiled is the hot half of the pipeline: the Program
// is compiled once outside the loop and only Evaluate runs per call — the
// mapper's per-rollout cost.
func BenchmarkEvaluateCompiled(b *testing.B) {
	root, g, spec := benchDesignPoint(b)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Evaluate(ctx, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateRebind adds the WithTiling re-bind to the compiled
// path: what a mapper pays per candidate when every rollout carries a
// different tiling of one structure.
func BenchmarkEvaluateRebind(b *testing.B) {
	root, g, spec := benchDesignPoint(b)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		b.Fatal(err)
	}
	clone := root.Clone()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := prog.WithTiling(clone)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Evaluate(ctx, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCompiledFasterThanCold asserts the pipeline's speedup contract —
// compiled re-evaluation at least 3x faster than the one-shot path on the
// canonical attention design point. Timing assertions are flaky on loaded
// CI machines, so the test only runs when TILEFLOW_BENCH=1.
func TestCompiledFasterThanCold(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the timing assertion")
	}
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const rounds = 300
	// Warm up both paths, then interleave measurements so CPU frequency
	// drift hits both equally.
	for i := 0; i < 20; i++ {
		if _, err := core.Evaluate(root, g, spec, core.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := prog.Evaluate(ctx, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	var cold, compiled time.Duration
	for i := 0; i < rounds; i++ {
		s := time.Now()
		if _, err := core.Evaluate(root, g, spec, core.Options{}); err != nil {
			t.Fatal(err)
		}
		cold += time.Since(s)
		s = time.Now()
		if _, err := prog.Evaluate(ctx, core.Options{}); err != nil {
			t.Fatal(err)
		}
		compiled += time.Since(s)
	}
	ratio := float64(cold) / float64(compiled)
	t.Logf("cold %v/op, compiled %v/op, speedup %.2fx",
		cold/rounds, compiled/rounds, ratio)
	if ratio < 3 {
		t.Errorf("compiled path only %.2fx faster than cold, want >= 3x", ratio)
	}
}
