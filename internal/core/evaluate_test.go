package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// sec42Graph builds the running example of Sec 4.2 / Fig 4: three operators
//
//	A[i,l] += Q[i,k]·K[k,l]
//	B[i,l]  = exp(A[i,l])
//	C[i,j] += B[i,l]·V[l,j]
func sec42Graph(i, j, l, k int) *workload.Graph {
	opA := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "l", Size: l}, {Name: "k", Size: k}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
			{Tensor: "K", Index: []workload.Index{workload.I("k"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opB := &workload.Operator{
		Name: "B", Kind: workload.KindExp,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "l", Size: l}},
		Reads: []workload.Access{
			{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opC := &workload.Operator{
		Name: "C", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "j", Size: j}, {Name: "l", Size: l}},
		Reads: []workload.Access{
			{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
			{Tensor: "V", Index: []workload.Index{workload.I("l"), workload.I("j")}},
		},
		Write: workload.Access{Tensor: "C", Index: []workload.Index{workload.I("i"), workload.I("j")}},
	}
	return workload.MustGraph("sec42", workload.WordBytes, opA, opB, opC)
}

// sec42Tree builds the Sec 4.2 example dataflow on a 4-level hierarchy:
//
//	level 2: T0_2 = {i2,j2,l2}(T0_1, T1_1)   Shar
//	level 1: T0_1 = {i1,l1}(T0_0, T1_0)      Pipe
//	         T1_1 = {i1,j1,l1}(T2_0)
//	level 0: T0_0 = {i0,l0,k}(A), T1_0 = {i0,l0}(B), T2_0 = {i0,j0,l0}(C)
//
// with Sp(i2), Sp(i1), Sp(i0).
func sec42Tree(g *workload.Graph) *Node {
	opA, opB, opC := g.Op("A"), g.Op("B"), g.Op("C")
	t00 := Leaf("T0_0", opA, S("i", 4), T("l", 32), T("k", 32))
	t10 := Leaf("T1_0", opB, S("i", 4), T("l", 32))
	t20 := Leaf("T2_0", opC, S("i", 4), T("j", 16), T("l", 32))
	t01 := Tile("T0_1", 1, Pipe, []Loop{S("i", 2), T("l", 2)}, t00, t10)
	t11 := Tile("T1_1", 1, Seq, []Loop{S("i", 2), T("j", 4), T("l", 2)}, t20)
	return Tile("T0_2", 2, Shar, []Loop{T("i", 4)}, t01, t11)
}

func TestSec42Evaluate(t *testing.T) {
	// i = 4·2·4 = 32, j = 2·4·8 = 64, l = 2·4·8 = 64, k = 32.
	g := sec42Graph(32, 64, 64, 32)
	root := sec42Tree(g)
	spec := arch.Cloud()
	res, err := Evaluate(root, g, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Tensor A is confined at T0_1 (level 1): it must generate zero
	// traffic at L2 and DRAM.
	if dm := res.TensorDM["A"]; dm != nil {
		if dm[2].Total() != 0 || dm[3].Total() != 0 {
			t.Errorf("tensor A leaks above its LCA: L2=%v DRAM=%v", dm[2], dm[3])
		}
	}
	// Tensor B is confined at the root (level 2): zero DRAM traffic.
	if dm := res.TensorDM["B"]; dm != nil && dm[3].Total() != 0 {
		t.Errorf("tensor B leaks to DRAM: %v", dm[3])
	}
	// Inputs and the output must reach DRAM.
	for _, tensor := range []string{"Q", "K", "V", "C"} {
		dm := res.TensorDM[tensor]
		if dm == nil || dm[3].Total() == 0 {
			t.Errorf("tensor %s has no DRAM traffic", tensor)
		}
	}
	// Every input must move at least its own volume off DRAM, and the
	// output must be written at least once.
	for _, tensor := range []string{"Q", "K", "V"} {
		vol := float64(g.Tensors[tensor].Volume())
		if got := res.TensorDM[tensor][3].Read; got < vol {
			t.Errorf("tensor %s DRAM reads %v < volume %v", tensor, got, vol)
		}
	}
	if got, vol := res.TensorDM["C"][3].Update, float64(g.Tensors["C"].Volume()); got < vol {
		t.Errorf("output C DRAM updates %v < volume %v", got, vol)
	}

	if res.Cycles <= 0 || math.IsInf(res.Cycles, 0) || math.IsNaN(res.Cycles) {
		t.Fatalf("bad cycles %v", res.Cycles)
	}
	if res.ComputeCycles <= 0 || res.ComputeCycles > res.Cycles {
		t.Errorf("compute-only cycles %v must be positive and <= total %v", res.ComputeCycles, res.Cycles)
	}
	// Compute lower bound: MACs can't beat the used PEs' peak.
	if res.PEsUsed <= 0 {
		t.Fatalf("PEsUsed = %d", res.PEsUsed)
	}
	lower := res.MACs / float64(res.TotalPEs)
	if res.Cycles < lower {
		t.Errorf("cycles %v below chip-wide compute bound %v", res.Cycles, lower)
	}
	if res.EnergyPJ() <= 0 {
		t.Errorf("energy %v", res.EnergyPJ())
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %v out of (0,1]", res.Utilization)
	}
}

// TestConfinementIsTheFusionPayoff compares the Sec 4.2 fused tree with a
// layerwise tree (each operator under the root alone): the fused dataflow
// must move strictly less DRAM data because A and B stay on chip.
func TestConfinementIsTheFusionPayoff(t *testing.T) {
	g := sec42Graph(32, 64, 64, 32)
	fused := sec42Tree(g)
	spec := arch.Cloud()

	layer := Tile("root", 3, Seq, nil,
		Tile("lA", 2, Seq, []Loop{T("i", 2), T("l", 2)},
			Tile("mA", 1, Seq, []Loop{T("i", 4), T("l", 4)},
				Leaf("tA", g.Op("A"), S("i", 4), T("l", 8), T("k", 32)))),
		Tile("lB", 2, Seq, []Loop{T("i", 2), T("l", 2)},
			Tile("mB", 1, Seq, []Loop{T("i", 4), T("l", 4)},
				Leaf("tB", g.Op("B"), S("i", 4), T("l", 8)))),
		Tile("lC", 2, Seq, []Loop{T("i", 2), T("j", 4), T("l", 2)},
			Tile("mC", 1, Seq, []Loop{T("i", 4), T("j", 2), T("l", 4)},
				Leaf("tC", g.Op("C"), S("i", 4), T("j", 8), T("l", 8)))),
	)

	rf, err := Evaluate(fused, g, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Evaluate(layer, g, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rf.DRAMTraffic() >= rl.DRAMTraffic() {
		t.Errorf("fused DRAM traffic %v not below layerwise %v", rf.DRAMTraffic(), rl.DRAMTraffic())
	}
	// Layerwise must pay at least A and B's volumes twice (write + read).
	minExtra := 2 * float64(g.Tensors["A"].Volume()+g.Tensors["B"].Volume())
	if rl.DRAMTraffic()-rf.DRAMTraffic() < minExtra*0.5 {
		t.Errorf("DRAM saving %v suspiciously small (intermediates total %v)",
			rl.DRAMTraffic()-rf.DRAMTraffic(), minExtra)
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	g := sec42Graph(32, 64, 64, 32)
	spec := arch.Cloud()

	// Wrong tiling product.
	bad := Leaf("t", g.Op("B"), T("i", 16), T("l", 64))
	root := Tile("r", 3, Seq, nil,
		Leaf("a", g.Op("A"), T("i", 32), T("l", 64), T("k", 32)),
		bad,
		Leaf("c", g.Op("C"), T("i", 32), T("j", 64), T("l", 64)),
	)
	if _, err := Evaluate(root, g, spec, Options{}); err == nil {
		t.Error("want error for under-tiled dim, got nil")
	}

	// Missing operator.
	root2 := Tile("r", 3, Seq, nil,
		Leaf("a", g.Op("A"), T("i", 32), T("l", 64), T("k", 32)),
	)
	if _, err := Evaluate(root2, g, spec, Options{}); err == nil {
		t.Error("want error for missing operator leaf, got nil")
	}

	// Loop over a dim foreign to the subtree.
	root3 := Tile("r", 3, Seq, []Loop{T("zz", 2)},
		Leaf("a", g.Op("A"), T("i", 32), T("l", 64), T("k", 32)),
		Leaf("b", g.Op("B"), T("i", 32), T("l", 64)),
		Leaf("c", g.Op("C"), T("i", 32), T("j", 64), T("l", 64)),
	)
	if _, err := Evaluate(root3, g, spec, Options{}); err == nil {
		t.Error("want error for foreign loop dim, got nil")
	}
}

func TestCapacityError(t *testing.T) {
	g := sec42Graph(32, 64, 64, 32)
	root := sec42Tree(g)
	// Shrink L1 to force an OOM.
	spec := arch.Cloud().WithLevelCapacity("L1", 64)
	_, err := Evaluate(root, g, spec, Options{})
	if !IsOOM(err) {
		t.Fatalf("want capacity error, got %v", err)
	}
	if _, err := Evaluate(root, g, spec, Options{SkipCapacityCheck: true}); err != nil {
		t.Fatalf("SkipCapacityCheck: %v", err)
	}
}
