// Package core implements TileFlow's primary contribution: the analysis tree
// built from the tile-centric notation (Sec 4) and the tree-based analysis
// of data movement volume, resource usage, latency and energy (Sec 5).
//
// A fusion dataflow is a tree of tile nodes. Each node is a perfect loop
// nest (a polyhedron of iterations) over its children; leaves carry a single
// operator. Loops are bound spatially (Sp) or temporally (Tp); sibling tiles
// are bound by one of the four inter-tile primitives of Table 1: Seq, Shar,
// Para, Pipe. A node's Level names the memory level (index into
// arch.Spec.Levels) whose buffer stages the node's data slices.
package core

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Binding is an inter-tile resource binding primitive (Table 1).
type Binding int

// The four inter-tile primitives. Seq gives each tile all resources in
// turns and evicts slices between tiles; Shar shares the memory across
// tiles executing in turns; Para and Pipe split compute and memory
// spatially, Pipe additionally pipelining dependent tiles.
const (
	Seq Binding = iota
	Shar
	Para
	Pipe
)

// String implements fmt.Stringer.
func (b Binding) String() string {
	switch b {
	case Seq:
		return "Seq"
	case Shar:
		return "Shar"
	case Para:
		return "Para"
	case Pipe:
		return "Pipe"
	}
	return fmt.Sprintf("Binding(%d)", int(b))
}

// Spatial reports whether the binding runs sibling tiles concurrently on
// disjoint hardware (Para, Pipe) rather than time-multiplexed (Seq, Shar).
func (b Binding) Spatial() bool { return b == Para || b == Pipe }

// LoopKind distinguishes the intra-tile primitives Sp and Tp of Table 1.
type LoopKind int

// Loop kinds: temporal loops advance over time steps, spatial loops map to
// parallel hardware units.
const (
	Temporal LoopKind = iota
	Spatial
)

// String implements fmt.Stringer.
func (k LoopKind) String() string {
	if k == Spatial {
		return "Sp"
	}
	return "Tp"
}

// Loop is one tiling loop of a tile node: a dimension name, the trip count
// at this node, and a spatial/temporal binding. Within a node, loops are
// ordered outermost first; spatial loops are treated as subdividing the
// chunk of the innermost temporal position.
type Loop struct {
	Dim    string
	Extent int
	Kind   LoopKind
}

// T builds a temporal loop.
func T(dim string, extent int) Loop { return Loop{Dim: dim, Extent: extent, Kind: Temporal} }

// S builds a spatial loop.
func S(dim string, extent int) Loop { return Loop{Dim: dim, Extent: extent, Kind: Spatial} }

// String renders the loop like "i1:4" or "Sp(i1:4)".
func (l Loop) String() string {
	if l.Kind == Spatial {
		return fmt.Sprintf("Sp(%s:%d)", l.Dim, l.Extent)
	}
	return fmt.Sprintf("%s:%d", l.Dim, l.Extent)
}

// Node is one tile of an analysis tree: the recursive tile definition
// T_n = {loops}(T¹_{n−1}, …) of Sec 4.2. A leaf node carries the operator it
// computes; interior nodes carry the inter-tile binding of their children.
type Node struct {
	// Name labels the tile for diagnostics and notation round-trips
	// (e.g. "T0_1").
	Name string

	// Level indexes arch.Spec.Levels; the node's slices are staged in
	// that level's buffer. Leaves sit at level 0 (registers); the root
	// usually sits at the DRAM level.
	Level int

	// Loops is the node's loop nest, outermost first.
	Loops []Loop

	// Binding combines the children (ignored for leaves). The paper's
	// default when unspecified is Seq.
	Binding Binding

	// Children are the sub-tiles, in execution order for Seq/Shar.
	Children []*Node

	// Op is non-nil exactly for leaves.
	Op *workload.Operator
}

// Leaf builds a leaf tile computing op with the given loops.
func Leaf(name string, op *workload.Operator, loops ...Loop) *Node {
	return &Node{Name: name, Level: 0, Op: op, Loops: loops}
}

// Tile builds an interior tile node.
func Tile(name string, level int, binding Binding, loops []Loop, children ...*Node) *Node {
	return &Node{Name: name, Level: level, Binding: binding, Loops: loops, Children: children}
}

// IsLeaf reports whether the node is a leaf tile.
func (n *Node) IsLeaf() bool { return n.Op != nil }

// TemporalTrips is the product of the node's temporal loop extents: the
// number of time steps one execution of this tile takes at its own level.
func (n *Node) TemporalTrips() int64 {
	t := int64(1)
	for _, l := range n.Loops {
		if l.Kind == Temporal {
			t *= int64(l.Extent)
		}
	}
	return t
}

// SpatialProduct is the product of the node's spatial loop extents: the
// number of parallel hardware partitions the node spreads across.
func (n *Node) SpatialProduct() int {
	s := 1
	for _, l := range n.Loops {
		if l.Kind == Spatial {
			s *= l.Extent
		}
	}
	return s
}

// SpatialExtent is the product of spatial extents over the named dimension
// at this node.
func (n *Node) SpatialExtent(dim string) int {
	s := 1
	for _, l := range n.Loops {
		if l.Kind == Spatial && l.Dim == dim {
			s *= l.Extent
		}
	}
	return s
}

// DimExtent is the product of all loop extents (spatial and temporal) over
// the named dimension at this node.
func (n *Node) DimExtent(dim string) int {
	s := 1
	for _, l := range n.Loops {
		if l.Dim == dim {
			s *= l.Extent
		}
	}
	return s
}

// Walk visits the subtree in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Leaves collects the leaf tiles of the subtree in execution order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// Ops collects the distinct operators computed in the subtree, in execution
// order.
func (n *Node) Ops() []*workload.Operator {
	var out []*workload.Operator
	seen := map[*workload.Operator]bool{}
	for _, leaf := range n.Leaves() {
		if !seen[leaf.Op] {
			seen[leaf.Op] = true
			out = append(out, leaf.Op)
		}
	}
	return out
}

// Clone deep-copies the subtree. Operators are shared, not copied.
func (n *Node) Clone() *Node {
	c := *n
	c.Loops = append([]Loop(nil), n.Loops...)
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.Clone()
	}
	return &c
}

// String renders the subtree as an indented outline.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	loops := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		loops[i] = l.String()
	}
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s%s@L%d {%s} op=%s\n", indent, n.Name, n.Level, strings.Join(loops, ", "), n.Op.Name)
		return
	}
	fmt.Fprintf(b, "%s%s@L%d {%s} %s\n", indent, n.Name, n.Level, strings.Join(loops, ", "), n.Binding)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// tree is the evaluation-time view of an analysis tree with parent links and
// per-leaf paths precomputed. Nodes are numbered in pre-order; the numbering
// indexes the tiling-independent tables of st, which are shared between a
// compiled template tree and its rebind copies, so a tree must never mutate
// st after buildTree returns.
type tree struct {
	root    *Node
	parent  map[*Node]*Node
	leaves  []*Node
	leafOf  map[*workload.Operator]*Node
	nodeSet []*Node       // pre-order; nodeSet[id[n]] == n
	id      map[*Node]int // pre-order ids, stable across rebinds
	st      *structure
}

// structure holds every analysis table that depends only on the tree's
// shape, levels, bindings and operators — never on loop extents — indexed
// by pre-order node id. One structure is computed per Compile and shared,
// read-only, by every tiling re-bind of the same shape.
type structure struct {
	// size is the subtree node count, making subtree membership an
	// O(1) pre-order interval test.
	size []int
	// dims is the set of iteration dimensions of all operators in the
	// subtree.
	dims []map[string]bool
	// groups lists, per node, the tensors its subtree accesses with all
	// per-tensor access closures precomputed, in first-use order.
	groups [][]tensorGroup
}

func buildTree(root *Node) (*tree, error) {
	t := &tree{
		root:   root,
		parent: map[*Node]*Node{},
		leafOf: map[*workload.Operator]*Node{},
		id:     map[*Node]int{},
	}
	var err error
	var visit func(n *Node)
	visit = func(n *Node) {
		t.id[n] = len(t.nodeSet)
		t.nodeSet = append(t.nodeSet, n)
		if n.IsLeaf() {
			if len(n.Children) > 0 {
				err = invalidf("core: leaf %q has children", n.Name)
				return
			}
			if prev := t.leafOf[n.Op]; prev != nil {
				err = invalidf("core: operator %q appears in two leaves (%q, %q)", n.Op.Name, prev.Name, n.Name)
				return
			}
			t.leafOf[n.Op] = n
			t.leaves = append(t.leaves, n)
			return
		}
		if len(n.Children) == 0 {
			err = invalidf("core: interior node %q has no children and no operator", n.Name)
			return
		}
		for _, c := range n.Children {
			if c.Level > n.Level {
				err = invalidf("core: child %q at level %d above parent %q at level %d", c.Name, c.Level, n.Name, n.Level)
				return
			}
			t.parent[c] = n
			visit(c)
			if err != nil {
				return
			}
		}
	}
	visit(root)
	if err != nil {
		return nil, err
	}
	t.st = buildStructure(t)
	return t, nil
}

// rebind builds the tree view of newRoot reusing t's compiled structure
// tables. newRoot must match t.root's structure — same shape, levels,
// bindings among siblings, and operators (by identity, or by name for
// canonically equal graphs) — while its loop nests are free to differ.
// The per-binding maps are rebuilt in one walk; everything in t.st is
// shared, which is what makes a tiling re-bind cheap.
func (t *tree) rebind(newRoot *Node) (*tree, error) {
	nt := &tree{
		root:    newRoot,
		parent:  make(map[*Node]*Node, len(t.parent)),
		leaves:  make([]*Node, 0, len(t.leaves)),
		leafOf:  make(map[*workload.Operator]*Node, len(t.leafOf)),
		nodeSet: make([]*Node, 0, len(t.nodeSet)),
		id:      make(map[*Node]int, len(t.nodeSet)),
		st:      t.st,
	}
	var walk func(tpl, n *Node) error
	walk = func(tpl, n *Node) error {
		if (tpl.Op == nil) != (n.Op == nil) || len(tpl.Children) != len(n.Children) {
			return invalidf("core: tree shape at %q differs from the compiled structure", n.Name)
		}
		if tpl.Level != n.Level {
			return invalidf("core: node %q at level %d, compiled structure has level %d", n.Name, n.Level, tpl.Level)
		}
		if tpl.Op != nil && tpl.Op != n.Op && tpl.Op.Name != n.Op.Name {
			return invalidf("core: leaf %q computes %q, compiled structure has %q", n.Name, n.Op.Name, tpl.Op.Name)
		}
		// Binding only matters between siblings; single-child and leaf
		// bindings are ignored by the analysis.
		if tpl.Op == nil && len(tpl.Children) > 1 && tpl.Binding != n.Binding {
			return invalidf("core: node %q bound %s, compiled structure has %s", n.Name, n.Binding, tpl.Binding)
		}
		nt.id[n] = len(nt.nodeSet)
		nt.nodeSet = append(nt.nodeSet, n)
		if n.Op != nil {
			// Key by the template's operator: the structure tables and the
			// compiled Program's graph reference those.
			nt.leafOf[tpl.Op] = n
			nt.leaves = append(nt.leaves, n)
		}
		for i, c := range n.Children {
			nt.parent[c] = n
			if err := walk(tpl.Children[i], c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, newRoot); err != nil {
		return nil, err
	}
	return nt, nil
}

// StructureSignature renders the tiling-independent structure of a tree —
// shape, node levels, bindings and operator names, but no loop nests — as a
// canonical string. Two trees over canonically equal graphs with equal
// signatures are mutually re-bindable via Program.WithTiling; caches keyed
// by it (the evaluation service's compiled-program cache) share one Program
// across all tilings of a structure.
func StructureSignature(root *Node) string {
	var b strings.Builder
	writeSignature(&b, root)
	return b.String()
}

func writeSignature(b *strings.Builder, n *Node) {
	if n.IsLeaf() {
		fmt.Fprintf(b, "(L%d %s)", n.Level, n.Op.Name)
		return
	}
	fmt.Fprintf(b, "(L%d %s", n.Level, n.Binding)
	for _, c := range n.Children {
		b.WriteByte(' ')
		writeSignature(b, c)
	}
	b.WriteByte(')')
}

// pathToRoot lists the node and its ancestors, innermost first.
func (t *tree) pathToRoot(n *Node) []*Node {
	var out []*Node
	for m := n; m != nil; m = t.parent[m] {
		out = append(out, m)
	}
	return out
}

// ancestors lists the strict ancestors of n, nearest first.
func (t *tree) ancestors(n *Node) []*Node {
	p := t.pathToRoot(n)
	return p[1:]
}

// lca returns the least common ancestor of the given nodes.
func (t *tree) lca(nodes []*Node) *Node {
	if len(nodes) == 0 {
		return nil
	}
	onPath := map[*Node]int{}
	for _, n := range nodes {
		for _, a := range t.pathToRoot(n) {
			onPath[a]++
		}
	}
	// Walk up from the first node; the first ancestor on every path is
	// the LCA.
	for _, a := range t.pathToRoot(nodes[0]) {
		if onPath[a] == len(nodes) {
			return a
		}
	}
	return t.root
}

// subtreeContains reports whether n's subtree contains the node with the
// given pre-order id: an O(1) interval test against the structure tables.
func (t *tree) subtreeContains(n *Node, id int) bool {
	ni := t.id[n]
	return ni <= id && id < ni+t.st.size[ni]
}

// childToward returns n's direct child on the path to leaf (or leaf itself
// when n is the leaf).
func (t *tree) childToward(n, leaf *Node) *Node {
	child := leaf
	for m := leaf; m != nil && m != n; m = t.parent[m] {
		child = m
	}
	return child
}

// covBelow is the chunk of dimension dim covered per iteration step of node
// n along the path toward leaf: the product of extents of dim loops at all
// path nodes strictly below n.
func (t *tree) covBelow(n *Node, leaf *Node, dim string) int {
	cov := 1
	for m := leaf; m != nil && m != n; m = t.parent[m] {
		cov *= m.DimExtent(dim)
	}
	return cov
}

// stepCov is the extent of dimension dim covered by one temporal step of
// node n on the path to leaf: the node's own spatial extents times
// everything below. This is the slice-defining quantity of Sec 5.1.1 — the
// slice extent stays constant across time steps and is determined by the
// spatial loops (and the subtree chunk).
func (t *tree) stepCov(n *Node, leaf *Node, dim string) int {
	return n.SpatialExtent(dim) * t.covBelow(n, leaf, dim)
}

// covAt is the full extent of dim covered by node n (all loops at n and
// below, along the path to leaf).
func (t *tree) covAt(n *Node, leaf *Node, dim string) int {
	return n.DimExtent(dim) * t.covBelow(n, leaf, dim)
}
