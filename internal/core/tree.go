// Package core implements TileFlow's primary contribution: the analysis tree
// built from the tile-centric notation (Sec 4) and the tree-based analysis
// of data movement volume, resource usage, latency and energy (Sec 5).
//
// A fusion dataflow is a tree of tile nodes. Each node is a perfect loop
// nest (a polyhedron of iterations) over its children; leaves carry a single
// operator. Loops are bound spatially (Sp) or temporally (Tp); sibling tiles
// are bound by one of the four inter-tile primitives of Table 1: Seq, Shar,
// Para, Pipe. A node's Level names the memory level (index into
// arch.Spec.Levels) whose buffer stages the node's data slices.
package core

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Binding is an inter-tile resource binding primitive (Table 1).
type Binding int

// The four inter-tile primitives. Seq gives each tile all resources in
// turns and evicts slices between tiles; Shar shares the memory across
// tiles executing in turns; Para and Pipe split compute and memory
// spatially, Pipe additionally pipelining dependent tiles.
const (
	Seq Binding = iota
	Shar
	Para
	Pipe
)

// String implements fmt.Stringer.
func (b Binding) String() string {
	switch b {
	case Seq:
		return "Seq"
	case Shar:
		return "Shar"
	case Para:
		return "Para"
	case Pipe:
		return "Pipe"
	}
	return fmt.Sprintf("Binding(%d)", int(b))
}

// Spatial reports whether the binding runs sibling tiles concurrently on
// disjoint hardware (Para, Pipe) rather than time-multiplexed (Seq, Shar).
func (b Binding) Spatial() bool { return b == Para || b == Pipe }

// LoopKind distinguishes the intra-tile primitives Sp and Tp of Table 1.
type LoopKind int

// Loop kinds: temporal loops advance over time steps, spatial loops map to
// parallel hardware units.
const (
	Temporal LoopKind = iota
	Spatial
)

// String implements fmt.Stringer.
func (k LoopKind) String() string {
	if k == Spatial {
		return "Sp"
	}
	return "Tp"
}

// Loop is one tiling loop of a tile node: a dimension name, the trip count
// at this node, and a spatial/temporal binding. Within a node, loops are
// ordered outermost first; spatial loops are treated as subdividing the
// chunk of the innermost temporal position.
type Loop struct {
	Dim    string
	Extent int
	Kind   LoopKind
}

// T builds a temporal loop.
func T(dim string, extent int) Loop { return Loop{Dim: dim, Extent: extent, Kind: Temporal} }

// S builds a spatial loop.
func S(dim string, extent int) Loop { return Loop{Dim: dim, Extent: extent, Kind: Spatial} }

// String renders the loop like "i1:4" or "Sp(i1:4)".
func (l Loop) String() string {
	if l.Kind == Spatial {
		return fmt.Sprintf("Sp(%s:%d)", l.Dim, l.Extent)
	}
	return fmt.Sprintf("%s:%d", l.Dim, l.Extent)
}

// Node is one tile of an analysis tree: the recursive tile definition
// T_n = {loops}(T¹_{n−1}, …) of Sec 4.2. A leaf node carries the operator it
// computes; interior nodes carry the inter-tile binding of their children.
type Node struct {
	// Name labels the tile for diagnostics and notation round-trips
	// (e.g. "T0_1").
	Name string

	// Level indexes arch.Spec.Levels; the node's slices are staged in
	// that level's buffer. Leaves sit at level 0 (registers); the root
	// usually sits at the DRAM level.
	Level int

	// Loops is the node's loop nest, outermost first.
	Loops []Loop

	// Binding combines the children (ignored for leaves). The paper's
	// default when unspecified is Seq.
	Binding Binding

	// Children are the sub-tiles, in execution order for Seq/Shar.
	Children []*Node

	// Op is non-nil exactly for leaves.
	Op *workload.Operator
}

// Leaf builds a leaf tile computing op with the given loops.
func Leaf(name string, op *workload.Operator, loops ...Loop) *Node {
	return &Node{Name: name, Level: 0, Op: op, Loops: loops}
}

// Tile builds an interior tile node.
func Tile(name string, level int, binding Binding, loops []Loop, children ...*Node) *Node {
	return &Node{Name: name, Level: level, Binding: binding, Loops: loops, Children: children}
}

// IsLeaf reports whether the node is a leaf tile.
func (n *Node) IsLeaf() bool { return n.Op != nil }

// TemporalTrips is the product of the node's temporal loop extents: the
// number of time steps one execution of this tile takes at its own level.
func (n *Node) TemporalTrips() int64 {
	t := int64(1)
	for _, l := range n.Loops {
		if l.Kind == Temporal {
			t *= int64(l.Extent)
		}
	}
	return t
}

// SpatialProduct is the product of the node's spatial loop extents: the
// number of parallel hardware partitions the node spreads across.
func (n *Node) SpatialProduct() int {
	s := 1
	for _, l := range n.Loops {
		if l.Kind == Spatial {
			s *= l.Extent
		}
	}
	return s
}

// SpatialExtent is the product of spatial extents over the named dimension
// at this node.
func (n *Node) SpatialExtent(dim string) int {
	s := 1
	for _, l := range n.Loops {
		if l.Kind == Spatial && l.Dim == dim {
			s *= l.Extent
		}
	}
	return s
}

// DimExtent is the product of all loop extents (spatial and temporal) over
// the named dimension at this node.
func (n *Node) DimExtent(dim string) int {
	s := 1
	for _, l := range n.Loops {
		if l.Dim == dim {
			s *= l.Extent
		}
	}
	return s
}

// Walk visits the subtree in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Leaves collects the leaf tiles of the subtree in execution order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// Ops collects the distinct operators computed in the subtree, in execution
// order.
func (n *Node) Ops() []*workload.Operator {
	var out []*workload.Operator
	seen := map[*workload.Operator]bool{}
	for _, leaf := range n.Leaves() {
		if !seen[leaf.Op] {
			seen[leaf.Op] = true
			out = append(out, leaf.Op)
		}
	}
	return out
}

// Clone deep-copies the subtree. Operators are shared, not copied.
func (n *Node) Clone() *Node {
	c := *n
	c.Loops = append([]Loop(nil), n.Loops...)
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.Clone()
	}
	return &c
}

// String renders the subtree as an indented outline.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	loops := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		loops[i] = l.String()
	}
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s%s@L%d {%s} op=%s\n", indent, n.Name, n.Level, strings.Join(loops, ", "), n.Op.Name)
		return
	}
	fmt.Fprintf(b, "%s%s@L%d {%s} %s\n", indent, n.Name, n.Level, strings.Join(loops, ", "), n.Binding)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// tree is the evaluation-time view of an analysis tree. Nodes are numbered
// in pre-order; every topological relation — parent links, children lists,
// subtree intervals, leaf indices — lives in the shared structure tables
// indexed by that numbering, so a tiling re-bind only has to produce a new
// nodeSet slice. The structure is shared between a compiled template tree
// and its rebind views and must never be mutated after buildTree returns.
type tree struct {
	root    *Node
	nodeSet []*Node // pre-order; nodeSet[i] is the node with id i
	// id maps template nodes to their pre-order ids. It exists only on
	// trees built by buildTree (templates); rebind views leave it nil —
	// the evaluator works purely on ids and never needs the map.
	id map[*Node]int
	st *structure
	// ldim[i][k] is the interned dim id of nodeSet[i].Loops[k] (-1 when
	// the dim is outside the structure's dim universe). It is the one
	// tiling-dependent table the tree carries: the hot analysis loops
	// compare these int32s instead of hashing dim strings. Recomputed by
	// every rebind; rows share the ldimBuf backing so a steady-state
	// re-bind allocates nothing.
	ldim    [][]int32
	ldimBuf []int32
	// ext[i][d]/sext[i][d] are the products of node i's loop extents over
	// interned dim d — all loops and spatial loops respectively — the
	// constant-time form of DimExtent/SpatialExtent the coverage walks
	// read. Recomputed by setLdim on every rebind; rows share extBuf.
	ext, sext [][]int64
	extBuf    []int64
}

// structure holds every analysis table that depends only on the tree's
// shape, levels, bindings and operators — never on loop extents — indexed
// by pre-order node id. One structure is computed per Compile and shared,
// read-only, by every tiling re-bind of the same shape.
type structure struct {
	// parent is the pre-order id of each node's parent; -1 for the root.
	parent []int
	// children lists each node's child ids in execution order.
	children [][]int
	// size is the subtree node count, making subtree membership an
	// O(1) pre-order interval test.
	size []int
	// leafOf maps each template operator to its leaf's pre-order id.
	leafOf map[*workload.Operator]int
	// dims is the set of iteration dimensions of all operators in the
	// subtree.
	dims []map[string]bool
	// dimID interns every dimension name any operator declares to a dense
	// id in [0, numDims), in first-leaf-declaration order. The hot
	// analysis loops run on these ids (loop compares, mask tests) instead
	// of string hashing.
	dimID   map[string]int
	numDims int
	// dimMask is dims as a bitset over dim ids, per node.
	dimMask [][]bool
	// groups lists, per node, the tensors its subtree accesses with all
	// per-tensor access closures precomputed, in first-use order.
	groups [][]tensorGroup
}

func buildTree(root *Node) (*tree, error) {
	t := &tree{
		root: root,
		id:   map[*Node]int{},
	}
	st := &structure{leafOf: map[*workload.Operator]int{}}
	leafNode := map[*workload.Operator]*Node{}
	var err error
	var visit func(n *Node, parent int)
	visit = func(n *Node, parent int) {
		id := len(t.nodeSet)
		t.id[n] = id
		t.nodeSet = append(t.nodeSet, n)
		st.parent = append(st.parent, parent)
		st.children = append(st.children, nil)
		if n.IsLeaf() {
			if len(n.Children) > 0 {
				err = invalidf("core: leaf %q has children", n.Name)
				return
			}
			if prev := leafNode[n.Op]; prev != nil {
				err = invalidf("core: operator %q appears in two leaves (%q, %q)", n.Op.Name, prev.Name, n.Name)
				return
			}
			leafNode[n.Op] = n
			st.leafOf[n.Op] = id
			return
		}
		if len(n.Children) == 0 {
			err = invalidf("core: interior node %q has no children and no operator", n.Name)
			return
		}
		for _, c := range n.Children {
			if c.Level > n.Level {
				err = invalidf("core: child %q at level %d above parent %q at level %d", c.Name, c.Level, n.Name, n.Level)
				return
			}
			st.children[id] = append(st.children[id], len(t.nodeSet))
			visit(c, id)
			if err != nil {
				return
			}
		}
	}
	visit(root, -1)
	if err != nil {
		return nil, err
	}
	t.st = st
	internDims(t)
	buildStructure(t)
	t.setLdim()
	return t, nil
}

// internDims assigns every dimension name declared by the tree's operators
// a dense id, in first-leaf-declaration (pre-order) order, so the
// assignment is deterministic. Loop dims outside this universe intern to
// -1; validation rejects them before any analysis loop compares ids.
func internDims(t *tree) {
	st := t.st
	st.dimID = map[string]int{}
	for _, n := range t.nodeSet {
		if !n.IsLeaf() {
			continue
		}
		for _, d := range n.Op.Dims {
			if _, ok := st.dimID[d.Name]; !ok {
				st.dimID[d.Name] = st.numDims
				st.numDims++
			}
		}
	}
}

// setLdim recomputes the per-loop interned dim ids for the tree's current
// nodeSet. Rows alias one flat backing buffer that is reused across
// re-binds, so steady-state calls allocate nothing.
func (t *tree) setLdim() {
	total := 0
	for _, n := range t.nodeSet {
		total += len(n.Loops)
	}
	if cap(t.ldimBuf) < total {
		t.ldimBuf = make([]int32, total)
	}
	buf := t.ldimBuf[:total]
	if cap(t.ldim) < len(t.nodeSet) {
		t.ldim = make([][]int32, 0, len(t.nodeSet))
	}
	t.ldim = t.ldim[:0]
	nn, nd := len(t.nodeSet), t.st.numDims
	if cap(t.extBuf) < 2*nn*nd {
		t.extBuf = make([]int64, 2*nn*nd)
	}
	ebuf := t.extBuf[:2*nn*nd]
	for i := range ebuf {
		ebuf[i] = 1
	}
	if cap(t.ext) < nn {
		t.ext = make([][]int64, 0, nn)
		t.sext = make([][]int64, 0, nn)
	}
	t.ext, t.sext = t.ext[:0], t.sext[:0]
	off := 0
	for i, n := range t.nodeSet {
		row := buf[off : off+len(n.Loops) : off+len(n.Loops)]
		off += len(n.Loops)
		erow := ebuf[i*nd : (i+1)*nd : (i+1)*nd]
		srow := ebuf[(nn+i)*nd : (nn+i+1)*nd : (nn+i+1)*nd]
		for li, l := range n.Loops {
			if id, ok := t.st.dimID[l.Dim]; ok {
				row[li] = int32(id)
				erow[id] *= int64(l.Extent)
				if l.Kind == Spatial {
					srow[id] *= int64(l.Extent)
				}
			} else {
				row[li] = -1
			}
		}
		t.ldim = append(t.ldim, row)
		t.ext = append(t.ext, erow)
		t.sext = append(t.sext, srow)
	}
}

// rebind builds the tree view of newRoot reusing t's compiled structure
// tables. newRoot must match t.root's structure — same shape, levels,
// bindings among siblings, and operators (by identity, or by name for
// canonically equal graphs) — while its loop nests are free to differ.
// Because every topological table is id-indexed and shared, the re-bind
// only fills a new nodeSet slice in one lockstep walk: a handful of
// allocations regardless of tree size.
func (t *tree) rebind(newRoot *Node) (*tree, error) {
	nt := &tree{}
	if err := t.rebindInto(nt, newRoot); err != nil {
		return nil, err
	}
	return nt, nil
}

// rebindInto is rebind writing into a caller-owned tree view, reusing its
// nodeSet backing array. It is what makes the batch and delta evaluation
// paths allocation-free: one view is re-filled per candidate.
func (t *tree) rebindInto(nt *tree, newRoot *Node) error {
	nt.root = newRoot
	nt.id = nil
	nt.st = t.st
	if cap(nt.nodeSet) < len(t.nodeSet) {
		nt.nodeSet = make([]*Node, 0, len(t.nodeSet))
	}
	nt.nodeSet = nt.nodeSet[:0]
	if err := t.rebindWalk(nt, newRoot); err != nil {
		return &structureError{err: err}
	}
	nt.setLdim()
	return nil
}

// rebindWalk validates one node against the template node at the same
// pre-order position and appends it to the view's nodeSet.
func (t *tree) rebindWalk(nt *tree, n *Node) error {
	pos := len(nt.nodeSet)
	if pos >= len(t.nodeSet) {
		return invalidf("core: tree shape at %q differs from the compiled structure", n.Name)
	}
	tpl := t.nodeSet[pos]
	if (tpl.Op == nil) != (n.Op == nil) || len(tpl.Children) != len(n.Children) {
		return invalidf("core: tree shape at %q differs from the compiled structure", n.Name)
	}
	if tpl.Level != n.Level {
		return invalidf("core: node %q at level %d, compiled structure has level %d", n.Name, n.Level, tpl.Level)
	}
	if tpl.Op != nil && tpl.Op != n.Op && tpl.Op.Name != n.Op.Name {
		return invalidf("core: leaf %q computes %q, compiled structure has %q", n.Name, n.Op.Name, tpl.Op.Name)
	}
	// Binding only matters between siblings; single-child and leaf
	// bindings are ignored by the analysis.
	if tpl.Op == nil && len(tpl.Children) > 1 && tpl.Binding != n.Binding {
		return invalidf("core: node %q bound %s, compiled structure has %s", n.Name, n.Binding, tpl.Binding)
	}
	nt.nodeSet = append(nt.nodeSet, n)
	for _, c := range n.Children {
		if err := t.rebindWalk(nt, c); err != nil {
			return err
		}
	}
	return nil
}

// StructureSignature renders the tiling-independent structure of a tree —
// shape, node levels, bindings and operator names, but no loop nests — as a
// canonical string. Two trees over canonically equal graphs with equal
// signatures are mutually re-bindable via Program.WithTiling; caches keyed
// by it (the evaluation service's compiled-program cache) share one Program
// across all tilings of a structure.
func StructureSignature(root *Node) string {
	var b strings.Builder
	writeSignature(&b, root)
	return b.String()
}

func writeSignature(b *strings.Builder, n *Node) {
	if n.IsLeaf() {
		fmt.Fprintf(b, "(L%d %s)", n.Level, n.Op.Name)
		return
	}
	fmt.Fprintf(b, "(L%d %s", n.Level, n.Binding)
	for _, c := range n.Children {
		b.WriteByte(' ')
		writeSignature(b, c)
	}
	b.WriteByte(')')
}

// lcaIDs returns the least common ancestor of the given node ids: the first
// ancestor of ids[0] whose pre-order interval contains every id.
func (t *tree) lcaIDs(ids []int) int {
	if len(ids) == 0 {
		return -1
	}
	a := ids[0]
	for {
		all := true
		for _, id := range ids {
			if !t.subtreeContains(a, id) {
				all = false
				break
			}
		}
		if all || t.st.parent[a] < 0 {
			return a
		}
		a = t.st.parent[a]
	}
}

// subtreeContains reports whether node n's subtree contains the node with
// the given pre-order id: an O(1) interval test against the structure
// tables.
func (t *tree) subtreeContains(n, id int) bool {
	return n <= id && id < n+t.st.size[n]
}

// childToward returns n's direct child on the path to leaf (or leaf itself
// when n is the leaf). All arguments and results are pre-order ids.
func (t *tree) childToward(n, leaf int) int {
	child := leaf
	for m := leaf; m >= 0 && m != n; m = t.st.parent[m] {
		child = m
	}
	return child
}

// covBelow is the chunk of dimension dim covered per iteration step of node
// n along the path toward leaf: the product of extents of dim loops at all
// path nodes strictly below n.
func (t *tree) covBelow(n, leaf int, dim string) int {
	cov := 1
	for m := leaf; m >= 0 && m != n; m = t.st.parent[m] {
		cov *= t.nodeSet[m].DimExtent(dim)
	}
	return cov
}

// stepCov is the extent of dimension dim covered by one temporal step of
// node n on the path to leaf: the node's own spatial extents times
// everything below. This is the slice-defining quantity of Sec 5.1.1 — the
// slice extent stays constant across time steps and is determined by the
// spatial loops (and the subtree chunk).
func (t *tree) stepCov(n, leaf int, dim string) int {
	return t.nodeSet[n].SpatialExtent(dim) * t.covBelow(n, leaf, dim)
}

// covAt is the full extent of dim covered by node n (all loops at n and
// below, along the path to leaf).
func (t *tree) covAt(n, leaf int, dim string) int {
	return t.nodeSet[n].DimExtent(dim) * t.covBelow(n, leaf, dim)
}

// dimExtentAt is DimExtent on interned dim ids: the product of all loop
// extents of node m whose dim interned to dim. The hot analysis loops use
// these forms to replace string hashing with int32 compares; each is the
// exact same product, term for term, as its string counterpart.
func (t *tree) dimExtentAt(m int, dim int32) int {
	if dim < 0 {
		// Dims outside the universe match no loop.
		return 1
	}
	return int(t.ext[m][dim])
}

// spatialExtentAt is SpatialExtent on interned dim ids.
func (t *tree) spatialExtentAt(m int, dim int32) int {
	if dim < 0 {
		return 1
	}
	return int(t.sext[m][dim])
}

// covBelowID is covBelow on interned dim ids.
func (t *tree) covBelowID(n, leaf int, dim int32) int {
	cov := 1
	for m := leaf; m >= 0 && m != n; m = t.st.parent[m] {
		cov *= t.dimExtentAt(m, dim)
	}
	return cov
}

// stepCovID is stepCov on interned dim ids.
func (t *tree) stepCovID(n, leaf int, dim int32) int {
	return t.spatialExtentAt(n, dim) * t.covBelowID(n, leaf, dim)
}

// covAtID is covAt on interned dim ids.
func (t *tree) covAtID(n, leaf int, dim int32) int {
	return t.dimExtentAt(n, dim) * t.covBelowID(n, leaf, dim)
}
