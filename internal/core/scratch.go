package core

import "sync"

// Scratch is a reusable per-evaluation arena: every buffer the tiling-
// dependent analysis needs, sized once from the compiled Program's node
// count, level count and access shapes. A steady-state evaluation through
// EvaluateInto touches only these buffers and performs zero heap
// allocations (pinned by an AllocsPerRun guard in the tests).
//
// A Scratch belongs to one Program family (the Program it was created from
// plus all its WithTiling re-binds, which share sizes) and to one goroutine
// at a time. Results returned by EvaluateInto alias the arena and are valid
// only until its next use; Evaluate clones them out.
type Scratch struct {
	// nodeFill/nodeUpdate are total words crossing each node's upper
	// boundary over the whole execution, indexed by pre-order node id.
	nodeFill   []float64
	nodeUpdate []float64
	dm         []LevelDM
	// tensorDM has its key set fixed at creation: exactly the tensors the
	// structure attributes traffic for (a tiling-independent set). Each
	// row aliases a block of tensorRows, the flat arena the evaluator
	// indexes by compile-time tensor id; the map exists for Result
	// consumers and the defensive unattributed fallback.
	tensorDM   map[string][]LevelDM
	tensorRows []LevelDM
	nTensors   int

	// Per-access working vectors for the Sec 5.1.1 set-difference formula.
	// tldims carries the interned dim id of each tloops entry.
	exts    []int64
	tloops  []Loop
	tldims  []int32
	strides []int64

	// Bottom-up row arenas: one row of numLevels entries per node.
	unitBuf []int
	fpRows  []int64

	// Result backing.
	accesses []float64
	slow     []float64
	bwreq    []float64
	perLevel []float64
	res      Result

	// view is a reusable rebind view for the batch path: one tree view is
	// re-filled per candidate instead of allocated.
	view tree
}

// NewScratch allocates a scratch arena sized for the Program. One arena
// serves any tiling re-bind of the same structure.
func (p *Program) NewScratch() *Scratch {
	n := len(p.t.nodeSet)
	levels := p.spec.NumLevels()
	s := &Scratch{
		nodeFill:   make([]float64, n),
		nodeUpdate: make([]float64, n),
		dm:         make([]LevelDM, levels),
		tensorDM:   make(map[string][]LevelDM, len(p.attributed)),
		tensorRows: make([]LevelDM, len(p.attributed)*levels),
		nTensors:   len(p.attributed),
		exts:       make([]int64, 0, p.maxIndexDims),
		tloops:     make([]Loop, 0, 16),
		tldims:     make([]int32, 0, 16),
		strides:    make([]int64, 0, 16),
		unitBuf:    make([]int, n*levels),
		fpRows:     make([]int64, n*levels),
		accesses:   make([]float64, levels),
		slow:       make([]float64, levels),
		bwreq:      make([]float64, levels),
		perLevel:   make([]float64, levels),
	}
	for i, tensor := range p.attributed {
		s.tensorDM[tensor] = s.tensorRows[i*levels : (i+1)*levels : (i+1)*levels]
	}
	return s
}

// reset zeroes the accumulating buffers. Buffers that every evaluation
// fully overwrites (row arenas, accesses, result backing) are left as-is.
func (s *Scratch) reset() {
	for i := range s.nodeFill {
		s.nodeFill[i] = 0
	}
	for i := range s.nodeUpdate {
		s.nodeUpdate[i] = 0
	}
	for i := range s.dm {
		s.dm[i] = LevelDM{}
	}
	for i := range s.tensorRows {
		s.tensorRows[i] = LevelDM{}
	}
	if len(s.tensorDM) > s.nTensors {
		// Defensive rows inserted for unattributed groups live only in
		// the map; zero them too (re-zeroing aliased rows is harmless).
		for _, row := range s.tensorDM {
			for i := range row {
				row[i] = LevelDM{}
			}
		}
	}
	// The slow-down/bandwidth loops write levels 1..L-1 only; level 0
	// stays zero as in a fresh allocation.
	if len(s.slow) > 0 {
		s.slow[0], s.bwreq[0] = 0, 0
	}
}

// scratchPool shares pooled arenas across a Program and its WithTiling
// copies. It lives behind a pointer so Program stays copyable.
type scratchPool struct {
	pool sync.Pool
}

func (p *Program) getScratch() *Scratch {
	if s, ok := p.pool.pool.Get().(*Scratch); ok {
		return s
	}
	return p.NewScratch()
}

func (p *Program) putScratch(s *Scratch) { p.pool.pool.Put(s) }

// cloneResult deep-copies a Result out of the arena it aliases.
func cloneResult(r *Result) *Result {
	out := *r
	out.DM = append([]LevelDM(nil), r.DM...)
	out.TensorDM = make(map[string][]LevelDM, len(r.TensorDM))
	for k, v := range r.TensorDM {
		cp := make([]LevelDM, len(v))
		copy(cp, v)
		out.TensorDM[k] = cp
	}
	out.UnitUsage = append([]int(nil), r.UnitUsage...)
	out.FootprintWords = append([]int64(nil), r.FootprintWords...)
	out.SlowDown = append([]float64(nil), r.SlowDown...)
	out.BandwidthReqGBs = append([]float64(nil), r.BandwidthReqGBs...)
	out.Energy.PerLevelPJ = append([]float64(nil), r.Energy.PerLevelPJ...)
	return &out
}
