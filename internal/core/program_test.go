package core_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// table5Library enumerates the paper's Table 5 dataflow templates over a
// representative workload each, the corpus the pipeline-equivalence tests
// sweep.
func table5Library(t testing.TB) map[string]dataflows.Dataflow {
	t.Helper()
	att, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		t.Fatal("attention shape Bert-S not found")
	}
	conv, ok := workload.ConvChainShapeByName("CC1")
	if !ok {
		t.Fatal("conv chain shape CC1 not found")
	}
	spec := arch.Edge()
	return map[string]dataflows.Dataflow{
		"Layerwise":   dataflows.LayerwiseAttention(att, spec),
		"Uni-pipe":    dataflows.UniPipe(att, spec),
		"FLAT-MGran":  dataflows.FLATMGran(att, spec),
		"FLAT-BGran":  dataflows.FLATBGran(att, spec),
		"FLAT-HGran":  dataflows.FLATHGran(att, spec),
		"FLAT-RGran":  dataflows.FLATRGran(att, spec),
		"Chimera":     dataflows.Chimera(att, spec),
		"TileFlow":    dataflows.TileFlowAttention(att, spec),
		"Fused-Layer": dataflows.FusedLayer(conv, spec),
		"ISOS":        dataflows.ISOS(conv, spec),
		"TileFlowCC":  dataflows.TileFlowConv(conv, spec),
	}
}

// variantFactors derives a handful of factor assignments from the default
// by walking each factor through its other divisor choices, deterministic
// and template-agnostic.
func variantFactors(df dataflows.Dataflow, count int) []map[string]int {
	out := []map[string]int{df.DefaultFactors()}
	for _, fs := range df.Factors() {
		for _, c := range fs.Choices() {
			if len(out) > count {
				return out
			}
			f := df.DefaultFactors()
			if f[fs.Key] == c {
				continue
			}
			f[fs.Key] = c
			out = append(out, f)
		}
	}
	return out
}

// TestProgramReuseMatchesEvaluate is the pipeline-equivalence guarantee:
// compiling a template once and re-binding every tiling through
// Program.WithTiling must reproduce the one-shot core.Evaluate result —
// same Result values or same error — across the Table 5 library, including
// under concurrent Evaluate calls on one shared Program (run with -race).
func TestProgramReuseMatchesEvaluate(t *testing.T) {
	spec := arch.Edge()
	for name, df := range table5Library(t) {
		t.Run(name, func(t *testing.T) {
			defRoot, err := df.Build(df.DefaultFactors())
			if err != nil {
				t.Fatal(err)
			}
			prog, err := core.Compile(defRoot, df.Graph(), spec)
			if err != nil {
				t.Fatal(err)
			}
			for vi, factors := range variantFactors(df, 6) {
				root, err := df.Build(factors)
				if err != nil {
					continue // variant outside the template's legal space
				}
				cold, coldErr := core.Evaluate(root, df.Graph(), spec, core.Options{})
				p, err := prog.WithTiling(root)
				if err != nil {
					t.Fatalf("variant %d: WithTiling: %v", vi, err)
				}
				const workers = 8
				var wg sync.WaitGroup
				errs := make([]error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						got, gotErr := p.Evaluate(context.Background(), core.Options{})
						if (gotErr == nil) != (coldErr == nil) {
							errs[w] = fmt.Errorf("variant %d: compiled err=%v, cold err=%v", vi, gotErr, coldErr)
							return
						}
						if coldErr != nil {
							if gotErr.Error() != coldErr.Error() {
								errs[w] = fmt.Errorf("variant %d: compiled err %q, cold err %q", vi, gotErr, coldErr)
							}
							return
						}
						if !reflect.DeepEqual(got, cold) {
							errs[w] = fmt.Errorf("variant %d: compiled result differs from cold Evaluate", vi)
						}
					}(w)
				}
				wg.Wait()
				for _, e := range errs {
					if e != nil {
						t.Fatal(e)
					}
				}
			}
		})
	}
}

// TestWithTilingRejectsMismatch pins the re-bind contract: a tree whose
// structure (shape, level, binding, or operator) differs from the compiled
// one is refused with ErrInvalidMapping instead of silently evaluating
// against the wrong tables.
func TestWithTilingRejectsMismatch(t *testing.T) {
	att, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		t.Fatal("attention shape Bert-S not found")
	}
	spec := arch.Edge()
	df := dataflows.FLATRGran(att, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(root, df.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}

	other := dataflows.LayerwiseAttention(att, spec)
	otherRoot, err := other.Build(other.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.WithTiling(otherRoot); !errors.Is(err, core.ErrInvalidMapping) {
		t.Errorf("WithTiling(different template) err = %v, want ErrInvalidMapping", err)
	}

	leveled := root.Clone()
	leveled.Level--
	if _, err := prog.WithTiling(leveled); !errors.Is(err, core.ErrInvalidMapping) {
		t.Errorf("WithTiling(changed level) err = %v, want ErrInvalidMapping", err)
	}

	// A clone with only loop extents changed is accepted (tiling re-bind),
	// even when the new tiling is itself invalid — that is Evaluate's job.
	retiled := root.Clone()
	retiled.Loops = append([]core.Loop(nil), root.Loops...)
	if _, err := prog.WithTiling(retiled); err != nil {
		t.Errorf("WithTiling(clone) err = %v, want nil", err)
	}
}

// TestProgramSignatureStableAcrossTilings: the structure signature — the
// compiled-program cache key — ignores loop nests.
func TestProgramSignatureStableAcrossTilings(t *testing.T) {
	for name, df := range table5Library(t) {
		if !dataflows.IsStructureStable(df) {
			t.Errorf("%s does not declare StructureStable", name)
			continue
		}
		var sig string
		for vi, factors := range variantFactors(df, 6) {
			root, err := df.Build(factors)
			if err != nil {
				continue
			}
			s := core.StructureSignature(root)
			if vi == 0 {
				sig = s
			} else if s != sig {
				t.Errorf("%s: variant %d signature differs:\n%s\nvs\n%s", name, vi, s, sig)
			}
		}
	}
}

// TestEvaluateAllocsCompiled guards the compiled hot path's allocation
// budget: re-evaluating through a compiled Program must stay well under
// the cold path (which pays tree compilation per call).
func TestEvaluateAllocsCompiled(t *testing.T) {
	att, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		t.Fatal("attention shape Bert-S not found")
	}
	spec := arch.Edge()
	df := dataflows.FLATRGran(att, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(root, df.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := prog.Evaluate(ctx, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// The pre-refactor monolithic Evaluate ran ~786 allocs on this design
	// point; the compiled path must stay far below it.
	const budget = 400
	if allocs > budget {
		t.Errorf("compiled Evaluate allocates %.0f/op, budget %d", allocs, budget)
	}
}

// TestCloneDeepCopiesLoops pins Node.Clone's deep copy of the Loops slice:
// mutating a clone's loop extents must not leak into the original (mappers
// clone a template tree and retile it in place).
func TestCloneDeepCopiesLoops(t *testing.T) {
	att, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		t.Fatal("attention shape Bert-S not found")
	}
	spec := arch.Edge()
	df := dataflows.FLATRGran(att, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	want := core.StructureSignature(root)
	var wantLoops [][]core.Loop
	root.Walk(func(n *core.Node) {
		wantLoops = append(wantLoops, append([]core.Loop(nil), n.Loops...))
	})

	clone := root.Clone()
	clone.Walk(func(n *core.Node) {
		for i := range n.Loops {
			n.Loops[i].Extent = 999
		}
	})

	if got := core.StructureSignature(root); got != want {
		t.Fatalf("clone mutation changed the original's structure")
	}
	var i int
	root.Walk(func(n *core.Node) {
		if !reflect.DeepEqual(n.Loops, wantLoops[i]) {
			t.Fatalf("node %q loops mutated through clone: %v != %v", n.Name, n.Loops, wantLoops[i])
		}
		i++
	})
}
