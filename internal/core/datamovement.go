package core

import (
	"repro/internal/workload"
)

// sliceExtents computes the per-tensor-dimension slice extents of an access
// at node n (along the path to leaf), per Sec 5.1.1: for each dimension the
// extent e−b stays constant over time steps and equals
// 1 + Σ coef·(stepCov(dim)−1) over the affine terms of the index expression.
func (t *tree) sliceExtents(n, leaf *Node, acc workload.Access) []int64 {
	exts := make([]int64, len(acc.Index))
	for i, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			e += int64(term.Coef) * int64(t.stepCov(n, leaf, term.Dim)-1)
		}
		if e < 1 {
			e = 1
		}
		exts[i] = e
	}
	return exts
}

// sliceVolume is the product of the slice extents: the size in words of the
// data slice one time step of node n touches for this access.
func (t *tree) sliceVolume(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, e := range t.sliceExtents(n, leaf, acc) {
		v *= e
	}
	return v
}

// sliceVolumePerInstance is the slice volume seen by ONE hardware instance
// at the node's level: the node's own spatial loops partition the slice
// across instances, so their extents are excluded. Used for per-instance
// buffer footprints.
func (t *tree) sliceVolumePerInstance(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			e += int64(term.Coef) * int64(t.covBelow(n, leaf, term.Dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// coveredVolumePerInstance is the swept footprint one hardware instance at
// the node's level touches over a full execution: full coverage of the
// node's temporal loops and everything below, excluding the node's own
// spatial partitioning. Used by the wrap-around retention test.
func (t *tree) coveredVolumePerInstance(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			cov := t.covAt(n, leaf, term.Dim) / max(1, n.SpatialExtent(term.Dim))
			e += int64(term.Coef) * int64(cov-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// coveredVolume is the slice volume with extents computed from the full
// coverage of node n (all its loops, not one step): the distinct data the
// whole execution of n touches through this access.
func (t *tree) coveredVolume(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			e += int64(term.Coef) * int64(t.covAt(n, leaf, term.Dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// temporalLoops lists node n's temporal loops outermost first.
func temporalLoops(n *Node) []Loop {
	var out []Loop
	for _, l := range n.Loops {
		if l.Kind == Temporal {
			out = append(out, l)
		}
	}
	return out
}

// strides computes, for each temporal loop of n (outer..inner), the number
// of elements of its dimension that one advance of that loop shifts the
// slice window by: the step coverage of the dimension times the extents of
// any inner temporal loops over the same dimension at this node.
func (t *tree) strides(n, leaf *Node, tloops []Loop) []int64 {
	out := make([]int64, len(tloops))
	for k, lk := range tloops {
		s := int64(t.stepCov(n, leaf, lk.Dim))
		for j := k + 1; j < len(tloops); j++ {
			if tloops[j].Dim == lk.Dim {
				s *= int64(tloops[j].Extent)
			}
		}
		out[k] = s
	}
	return out
}

// perExecDM implements the single-tile data-movement formula of Sec 5.1.1:
// the total volume moved across the node's upper boundary during one
// complete execution of node n for the given access. It equals the
// compulsory full slice plus, for every temporal-loop boundary t_k, the
// slice set-difference when loop k advances one chunk and all loops inner
// to it reset, weighted by how often that boundary occurs:
//
//	DM = |Slice| + Σ_k (e_k−1)·Π_{m outer of k} e_m · Δ_k
//
// This reproduces the worked Figure 5 example (168 elements for tensor A).
func (t *tree) perExecDM(n, leaf *Node, acc workload.Access) float64 {
	exts := t.sliceExtents(n, leaf, acc)
	vfull := int64(1)
	for _, e := range exts {
		vfull *= e
	}
	tloops := temporalLoops(n)
	if len(tloops) == 0 {
		return float64(vfull)
	}
	strides := t.strides(n, leaf, tloops)

	// Wrap-around retention: when a boundary's advancing loop does not
	// index the tensor, the "new" slice revisits data the current sweep
	// already touched. If the whole swept footprint fits comfortably in
	// this node's buffer, the revisit is a hit, not a refetch. (Without
	// a capacity model this is the paper's documented overestimation —
	// "it assumes data replacement happens for every outer iteration";
	// with one, the model matches the polyhedron baselines on single
	// operators.)
	retainWrap := t.retainOK != nil && t.retainOK(n, leaf, acc)

	// Loops that do not index the tensor neither move its slice nor —
	// under retention — force inner sweeps to refetch: their effective
	// trip count for movement purposes collapses to 1.
	advances := make([]bool, len(tloops))
	for k, lk := range tloops {
		for _, ix := range acc.Index {
			for _, term := range ix.Terms {
				if term.Dim == lk.Dim {
					advances[k] = true
				}
			}
		}
	}
	total := float64(vfull)
	outerProd := int64(1) // effective product of extents of loops outer of k
	for k, lk := range tloops {
		if retainWrap && !advances[k] {
			continue
		}
		// Net shift of every iteration dimension when loop k advances
		// and loops inner to it wrap back to their lower bounds.
		delta := map[string]int64{}
		delta[lk.Dim] += strides[k]
		for j := k + 1; j < len(tloops); j++ {
			delta[tloops[j].Dim] -= int64(tloops[j].Extent-1) * strides[j]
		}
		// Overlap of the new slice with the old one, per tensor dim.
		overlap := int64(1)
		for i, ix := range acc.Index {
			var d int64
			for _, term := range ix.Terms {
				d += int64(term.Coef) * delta[term.Dim]
			}
			if d < 0 {
				d = -d
			}
			ov := exts[i] - d
			if ov < 0 {
				ov = 0
			}
			overlap *= ov
		}
		diff := float64(vfull - overlap)
		mult := float64(int64(lk.Extent-1) * outerProd)
		total += mult * diff
		outerProd *= int64(lk.Extent)
	}
	return total
}

// accessPair is one (leaf, access) occurrence of a tensor in a subtree.
type accessPair struct {
	leaf *Node
	op   *workload.Operator
	acc  workload.Access
	read bool // read access vs the write access
}

// tensorAccesses collects every access to every tensor by operators in the
// subtree of n, keyed by tensor name.
func (t *tree) tensorAccesses(n *Node) map[string][]accessPair {
	out := map[string][]accessPair{}
	for _, leaf := range n.Leaves() {
		for _, r := range leaf.Op.Reads {
			out[r.Tensor] = append(out[r.Tensor], accessPair{leaf: leaf, op: leaf.Op, acc: r, read: true})
		}
		w := leaf.Op.Write
		out[w.Tensor] = append(out[w.Tensor], accessPair{leaf: leaf, op: leaf.Op, acc: w, read: false})
	}
	return out
}

// childUsesTensor reports whether any operator in the child subtree touches
// the tensor.
func (t *tree) childUsesTensor(child *Node, tensor string) bool {
	for _, leaf := range child.Leaves() {
		for _, acc := range leaf.Op.Accesses() {
			if acc.Tensor == tensor {
				return true
			}
		}
	}
	return false
}

// seqEvicts reports whether node n's Seq binding evicts the tensor between
// phases (Sec 5.1.2): under Seq a tile's slices are evicted unless the
// following tile needs them, so any tensor used by a strict subset of the
// children loses all inter-phase and inter-iteration reuse at this node.
func (t *tree) seqEvicts(n *Node, tensor string) bool {
	if n.Binding != Seq || len(n.Children) < 2 {
		return false
	}
	for _, c := range n.Children {
		if !t.childUsesTensor(c, tensor) {
			return true
		}
	}
	return false
}

// fillPerExec computes the words of the tensor that cross node n's upper
// boundary inward during one execution of n, and whether Seq eviction broke
// all reuse. Multiple accesses to the same tensor share the staged slice,
// so the maximum over accesses is taken. Under Seq eviction the slice is
// refetched on every time step.
func (t *tree) fillPerExec(n *Node, pairs []accessPair, tensor string) (float64, bool) {
	evict := t.seqEvicts(n, tensor)
	var best float64
	for _, p := range pairs {
		var v float64
		if evict {
			v = float64(n.TemporalTrips()) * float64(t.sliceVolume(n, p.leaf, p.acc))
		} else {
			v = t.perExecDM(n, p.leaf, p.acc)
		}
		if v > best {
			best = v
		}
	}
	return best, evict
}

// fillInvocations counts how many times node n's per-execution fill of a
// tensor recurs: ancestor loops over dimensions the tensor's accesses do
// not index leave its slices unchanged, so the staged data is reused in
// place across those iterations (the same hierarchical-reuse assumption the
// polyhedron models make). Seq eviction forfeits that reuse: every relevant
// re-execution refetches.
func (t *tree) fillInvocations(n *Node, pairs []accessPair, evicted bool) float64 {
	if evicted {
		return t.relevantInvocations(n)
	}
	dims := map[string]bool{}
	for _, p := range pairs {
		for d := range accessDims(p.acc) {
			dims[d] = true
		}
	}
	return t.invocationsWhere(n, dims)
}

// updateInvocations counts output drains: ancestor loops over the write
// access's dims produce distinct output versions, and ancestor loops over
// the operator's reduction dims force partial-sum round trips.
func (t *tree) updateInvocations(n *Node, pairs []accessPair) float64 {
	dims := map[string]bool{}
	for _, p := range pairs {
		for d := range accessDims(p.acc) {
			dims[d] = true
		}
		for _, rd := range p.op.ReductionDims() {
			dims[rd] = true
		}
	}
	return t.invocationsWhere(n, dims)
}

// relevantInvocations counts how many times node n executes in total: the
// product over strict ancestors of the extents of their loops whose
// dimension is relevant to the subtree hanging toward n. Ancestor loops
// over dimensions no operator under the path-child iterates do not
// re-execute the subtree (the result is reused in place).
func (t *tree) relevantInvocations(n *Node) float64 {
	return t.invocationsWhere(n, nil)
}

// invocationsWhere is relevantInvocations restricted: when onlyDims is
// non-nil, only ancestor loops over those dimensions count. It is used to
// compute how many distinct output versions a node drains (write-relevant
// dims only) versus how many times it drains (all relevant dims).
func (t *tree) invocationsWhere(n *Node, onlyDims map[string]bool) float64 {
	inv := 1.0
	child := n
	for a := t.parent[n]; a != nil; a = t.parent[a] {
		rel := t.subtreeDims(child)
		for _, l := range a.Loops {
			if !rel[l.Dim] {
				continue
			}
			if onlyDims != nil && !onlyDims[l.Dim] {
				continue
			}
			inv *= float64(l.Extent)
		}
		child = a
	}
	return inv
}

// subtreeDims reports the set of iteration dimensions of all operators in
// the subtree, memoized per tree.
func (t *tree) subtreeDims(n *Node) map[string]bool {
	if t.dimsMemo == nil {
		t.dimsMemo = map[*Node]map[string]bool{}
	}
	if m, ok := t.dimsMemo[n]; ok {
		return m
	}
	m := map[string]bool{}
	for _, op := range n.Ops() {
		for _, d := range op.Dims {
			m[d.Name] = true
		}
	}
	t.dimsMemo[n] = m
	return m
}

// accessDims is the set of iteration dims an access refers to.
func accessDims(acc workload.Access) map[string]bool {
	m := map[string]bool{}
	for _, d := range acc.Dims() {
		m[d] = true
	}
	return m
}
