package core

import (
	"repro/internal/workload"
)

// sliceExtents computes the per-tensor-dimension slice extents of an access
// at node n (along the path to leaf), per Sec 5.1.1: for each dimension the
// extent e−b stays constant over time steps and equals
// 1 + Σ coef·(stepCov(dim)−1) over the affine terms of the index expression.
func (t *tree) sliceExtents(n, leaf *Node, acc workload.Access) []int64 {
	exts := make([]int64, len(acc.Index))
	for i, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			e += int64(term.Coef) * int64(t.stepCov(n, leaf, term.Dim)-1)
		}
		if e < 1 {
			e = 1
		}
		exts[i] = e
	}
	return exts
}

// sliceVolume is the product of the slice extents: the size in words of the
// data slice one time step of node n touches for this access.
func (t *tree) sliceVolume(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, e := range t.sliceExtents(n, leaf, acc) {
		v *= e
	}
	return v
}

// sliceVolumePerInstance is the slice volume seen by ONE hardware instance
// at the node's level: the node's own spatial loops partition the slice
// across instances, so their extents are excluded. Used for per-instance
// buffer footprints.
func (t *tree) sliceVolumePerInstance(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			e += int64(term.Coef) * int64(t.covBelow(n, leaf, term.Dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// coveredVolumePerInstance is the swept footprint one hardware instance at
// the node's level touches over a full execution: full coverage of the
// node's temporal loops and everything below, excluding the node's own
// spatial partitioning. Used by the wrap-around retention test.
func (t *tree) coveredVolumePerInstance(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			cov := t.covAt(n, leaf, term.Dim) / max(1, n.SpatialExtent(term.Dim))
			e += int64(term.Coef) * int64(cov-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// coveredVolume is the slice volume with extents computed from the full
// coverage of node n (all its loops, not one step): the distinct data the
// whole execution of n touches through this access.
func (t *tree) coveredVolume(n, leaf *Node, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			e += int64(term.Coef) * int64(t.covAt(n, leaf, term.Dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// temporalLoops lists node n's temporal loops outermost first.
func temporalLoops(n *Node) []Loop {
	var out []Loop
	for _, l := range n.Loops {
		if l.Kind == Temporal {
			out = append(out, l)
		}
	}
	return out
}

// strides computes, for each temporal loop of n (outer..inner), the number
// of elements of its dimension that one advance of that loop shifts the
// slice window by: the step coverage of the dimension times the extents of
// any inner temporal loops over the same dimension at this node.
func (t *tree) strides(n, leaf *Node, tloops []Loop) []int64 {
	out := make([]int64, len(tloops))
	for k, lk := range tloops {
		s := int64(t.stepCov(n, leaf, lk.Dim))
		for j := k + 1; j < len(tloops); j++ {
			if tloops[j].Dim == lk.Dim {
				s *= int64(tloops[j].Extent)
			}
		}
		out[k] = s
	}
	return out
}

// perExecDM implements the single-tile data-movement formula of Sec 5.1.1:
// the total volume moved across the node's upper boundary during one
// complete execution of node n for the given access. It equals the
// compulsory full slice plus, for every temporal-loop boundary t_k, the
// slice set-difference when loop k advances one chunk and all loops inner
// to it reset, weighted by how often that boundary occurs:
//
//	DM = |Slice| + Σ_k (e_k−1)·Π_{m outer of k} e_m · Δ_k
//
// This reproduces the worked Figure 5 example (168 elements for tensor A).
//
// retain enables wrap-around retention: when a boundary's advancing loop
// does not index the tensor, the "new" slice revisits data the current
// sweep already touched, and if the whole swept footprint fits comfortably
// in this node's buffer the revisit is a hit, not a refetch. (Without a
// capacity model this is the paper's documented overestimation — "it
// assumes data replacement happens for every outer iteration"; with one,
// the model matches the polyhedron baselines on single operators.)
func (t *tree) perExecDM(n, leaf *Node, acc workload.Access, retain bool) float64 {
	exts := t.sliceExtents(n, leaf, acc)
	vfull := int64(1)
	for _, e := range exts {
		vfull *= e
	}
	tloops := temporalLoops(n)
	if len(tloops) == 0 {
		return float64(vfull)
	}
	strides := t.strides(n, leaf, tloops)

	total := float64(vfull)
	outerProd := int64(1) // effective product of extents of loops outer of k
	for k, lk := range tloops {
		if retain {
			// Loops that do not index the tensor neither move its slice
			// nor — under retention — force inner sweeps to refetch:
			// their effective trip count for movement collapses to 1.
			advances := false
			for _, ix := range acc.Index {
				for _, term := range ix.Terms {
					if term.Dim == lk.Dim {
						advances = true
					}
				}
			}
			if !advances {
				continue
			}
		}
		// Overlap of the new slice with the old one, per tensor dim: the
		// net shift of each iteration dimension when loop k advances and
		// loops inner to it wrap back to their lower bounds is the
		// k-stride on lk.Dim minus the full inner sweeps of the dim.
		overlap := int64(1)
		for i, ix := range acc.Index {
			var d int64
			for _, term := range ix.Terms {
				var shift int64
				if term.Dim == lk.Dim {
					shift = strides[k]
				}
				for j := k + 1; j < len(tloops); j++ {
					if tloops[j].Dim == term.Dim {
						shift -= int64(tloops[j].Extent-1) * strides[j]
					}
				}
				d += int64(term.Coef) * shift
			}
			if d < 0 {
				d = -d
			}
			ov := exts[i] - d
			if ov < 0 {
				ov = 0
			}
			overlap *= ov
		}
		diff := float64(vfull - overlap)
		mult := float64(int64(lk.Extent-1) * outerProd)
		total += mult * diff
		outerProd *= int64(lk.Extent)
	}
	return total
}

// accessRef is one (leaf, access) occurrence of a tensor in a subtree, with
// the access's iteration-dim set precomputed. The leaf is identified by its
// pre-order id so the reference stays valid across tiling re-binds.
type accessRef struct {
	leafID int
	op     *workload.Operator
	acc    workload.Access
	dims   map[string]bool
}

// tensorGroup aggregates every access to one tensor by operators in a
// node's subtree, split by direction, with the per-direction invocation dim
// sets and the Seq-eviction verdict precomputed at compile time.
type tensorGroup struct {
	tensor string
	reads  []accessRef
	writes []accessRef
	// readDims is the union of the read accesses' iteration dims: ancestor
	// loops over other dims leave the staged slices unchanged, so only
	// these dims multiply fill invocations.
	readDims map[string]bool
	// writeDims additionally includes the writers' reduction dims, which
	// force partial-sum round trips.
	writeDims map[string]bool
	// evicts marks Seq eviction (Sec 5.1.2): under Seq a tile's slices are
	// evicted unless the following tile needs them, so a tensor used by a
	// strict subset of the children loses all reuse at this node.
	evicts bool
}

// buildStructure computes the tiling-independent tables for a freshly
// indexed tree in one post-order pass: subtree sizes, subtree dim sets, and
// per-node tensor access groups with their invocation closures.
func buildStructure(t *tree) *structure {
	n := len(t.nodeSet)
	st := &structure{
		size:   make([]int, n),
		dims:   make([]map[string]bool, n),
		groups: make([][]tensorGroup, n),
	}
	idxOf := make([]map[string]int, n) // tensor -> group index, per node
	var build func(nd *Node)
	build = func(nd *Node) {
		id := t.id[nd]
		dims := map[string]bool{}
		var groups []tensorGroup
		idx := map[string]int{}
		grp := func(tensor string) *tensorGroup {
			gi, ok := idx[tensor]
			if !ok {
				gi = len(groups)
				idx[tensor] = gi
				groups = append(groups, tensorGroup{tensor: tensor})
			}
			return &groups[gi]
		}
		size := 1
		if nd.IsLeaf() {
			op := nd.Op
			for _, d := range op.Dims {
				dims[d.Name] = true
			}
			for _, r := range op.Reads {
				g := grp(r.Tensor)
				g.reads = append(g.reads, accessRef{leafID: id, op: op, acc: r, dims: accessDims(r)})
			}
			w := op.Write
			g := grp(w.Tensor)
			g.writes = append(g.writes, accessRef{leafID: id, op: op, acc: w, dims: accessDims(w)})
		} else {
			for _, c := range nd.Children {
				build(c)
				cid := t.id[c]
				size += st.size[cid]
				for d := range st.dims[cid] {
					dims[d] = true
				}
				for _, cg := range st.groups[cid] {
					g := grp(cg.tensor)
					g.reads = append(g.reads, cg.reads...)
					g.writes = append(g.writes, cg.writes...)
				}
			}
		}
		for gi := range groups {
			g := &groups[gi]
			g.readDims = map[string]bool{}
			for _, r := range g.reads {
				for d := range r.dims {
					g.readDims[d] = true
				}
			}
			g.writeDims = map[string]bool{}
			for _, w := range g.writes {
				for d := range w.dims {
					g.writeDims[d] = true
				}
				for _, rd := range w.op.ReductionDims() {
					g.writeDims[rd] = true
				}
			}
			if nd.Binding == Seq && len(nd.Children) >= 2 {
				for _, c := range nd.Children {
					if _, uses := idxOf[t.id[c]][g.tensor]; !uses {
						g.evicts = true
						break
					}
				}
			}
		}
		st.size[id] = size
		st.dims[id] = dims
		st.groups[id] = groups
		idxOf[id] = idx
	}
	build(t.root)
	return st
}

// relevantInvocations counts how many times node n executes in total: the
// product over strict ancestors of the extents of their loops whose
// dimension is relevant to the subtree hanging toward n. Ancestor loops
// over dimensions no operator under the path-child iterates do not
// re-execute the subtree (the result is reused in place).
func (t *tree) relevantInvocations(n *Node) float64 {
	return t.invocationsWhere(n, nil)
}

// invocationsWhere is relevantInvocations restricted: when onlyDims is
// non-nil, only ancestor loops over those dimensions count. It is used to
// compute how many distinct output versions a node drains (write-relevant
// dims only) versus how many times it drains (all relevant dims).
func (t *tree) invocationsWhere(n *Node, onlyDims map[string]bool) float64 {
	inv := 1.0
	child := n
	for a := t.parent[n]; a != nil; a = t.parent[a] {
		rel := t.subtreeDims(child)
		for _, l := range a.Loops {
			if !rel[l.Dim] {
				continue
			}
			if onlyDims != nil && !onlyDims[l.Dim] {
				continue
			}
			inv *= float64(l.Extent)
		}
		child = a
	}
	return inv
}

// subtreeDims reports the set of iteration dimensions of all operators in
// the subtree, precomputed at compile time.
func (t *tree) subtreeDims(n *Node) map[string]bool {
	return t.st.dims[t.id[n]]
}

// accessDims is the set of iteration dims an access refers to.
func accessDims(acc workload.Access) map[string]bool {
	m := map[string]bool{}
	for _, d := range acc.Dims() {
		m[d] = true
	}
	return m
}
