package core

import (
	"repro/internal/workload"
)

// iterm is one affine term of an access index with the dim interned: the
// form the hot volume formulas iterate so they compare int32 ids instead of
// hashing strings. dim is -1 for dims outside the structure's universe,
// which match no loop — exactly the string behavior, since every valid
// loop dim is an operator dim and therefore interned.
type iterm struct {
	dim  int32
	coef int64
}

// internAccess interns an access's index expression against the
// structure's dim universe.
func internAccess(st *structure, acc workload.Access) [][]iterm {
	out := make([][]iterm, len(acc.Index))
	for i, ix := range acc.Index {
		terms := make([]iterm, len(ix.Terms))
		for j, term := range ix.Terms {
			d := int32(-1)
			if id, ok := st.dimID[term.Dim]; ok {
				d = int32(id)
			}
			terms[j] = iterm{dim: d, coef: int64(term.Coef)}
		}
		out[i] = terms
	}
	return out
}

// dimMaskOf converts a dim-name set to a mask over interned ids. Names
// outside the universe are dropped: they can never match a valid loop dim,
// so the mask tests are equivalent to the map lookups they replace.
func dimMaskOf(st *structure, dims map[string]bool) []bool {
	m := make([]bool, st.numDims)
	for d := range dims {
		if id, ok := st.dimID[d]; ok {
			m[id] = true
		}
	}
	return m
}

// sliceExtentsInto computes the per-tensor-dimension slice extents of an
// access at node n (along the path to leaf), per Sec 5.1.1: for each
// dimension the extent e−b stays constant over time steps and equals
// 1 + Σ coef·(stepCov(dim)−1) over the affine terms of the index expression.
// The result is written into dst, which must have len(acc.Index) capacity.
// This string-keyed form interns on the fly for cold callers and tests;
// the hot paths hold precomputed iterms and call sliceExtentsIntoI.
func (t *tree) sliceExtentsInto(dst []int64, n, leaf int, acc workload.Access) []int64 {
	return t.sliceExtentsIntoI(dst, n, leaf, internAccess(t.st, acc))
}

func (t *tree) sliceExtentsIntoI(dst []int64, n, leaf int, iix [][]iterm) []int64 {
	dst = dst[:len(iix)]
	for i, terms := range iix {
		e := int64(1)
		for _, term := range terms {
			e += term.coef * int64(t.stepCovID(n, leaf, term.dim)-1)
		}
		if e < 1 {
			e = 1
		}
		dst[i] = e
	}
	return dst
}

// sliceVolume is the product of the slice extents: the size in words of the
// data slice one time step of node n touches for this access.
func (t *tree) sliceVolume(n, leaf int, acc workload.Access) int64 {
	return t.sliceVolumeI(n, leaf, internAccess(t.st, acc))
}

func (t *tree) sliceVolumeI(n, leaf int, iix [][]iterm) int64 {
	v := int64(1)
	for _, terms := range iix {
		e := int64(1)
		for _, term := range terms {
			e += term.coef * int64(t.stepCovID(n, leaf, term.dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// sliceVolumePerInstanceI is the slice volume seen by ONE hardware instance
// at the node's level: the node's own spatial loops partition the slice
// across instances, so their extents are excluded. Used for per-instance
// buffer footprints.
func (t *tree) sliceVolumePerInstanceI(n, leaf int, iix [][]iterm) int64 {
	v := int64(1)
	for _, terms := range iix {
		e := int64(1)
		for _, term := range terms {
			e += term.coef * int64(t.covBelowID(n, leaf, term.dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// coveredVolumePerInstanceI is the swept footprint one hardware instance at
// the node's level touches over a full execution: full coverage of the
// node's temporal loops and everything below, excluding the node's own
// spatial partitioning. Used by the wrap-around retention test.
func (t *tree) coveredVolumePerInstanceI(n, leaf int, iix [][]iterm) int64 {
	v := int64(1)
	for _, terms := range iix {
		e := int64(1)
		for _, term := range terms {
			cov := t.covAtID(n, leaf, term.dim) / max(1, t.spatialExtentAt(n, term.dim))
			e += term.coef * int64(cov-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// coveredVolumeI is the slice volume with extents computed from the full
// coverage of node n (all its loops, not one step): the distinct data the
// whole execution of n touches through this access.
func (t *tree) coveredVolumeI(n, leaf int, iix [][]iterm) int64 {
	v := int64(1)
	for _, terms := range iix {
		e := int64(1)
		for _, term := range terms {
			e += term.coef * int64(t.covAtID(n, leaf, term.dim)-1)
		}
		if e < 1 {
			e = 1
		}
		v *= e
	}
	return v
}

// temporalLoops lists node n's temporal loops outermost first.
func temporalLoops(n *Node) []Loop {
	return temporalLoopsInto(nil, n)
}

// temporalLoopsInto is temporalLoops appending into a caller-owned buffer.
func temporalLoopsInto(dst []Loop, n *Node) []Loop {
	for _, l := range n.Loops {
		if l.Kind == Temporal {
			dst = append(dst, l)
		}
	}
	return dst
}

// stridesInto computes, for each temporal loop of n (outer..inner), the
// number of elements of its dimension that one advance of that loop shifts
// the slice window by: the step coverage of the dimension times the extents
// of any inner temporal loops over the same dimension at this node. Results
// are appended into dst.
func (t *tree) stridesInto(dst []int64, n, leaf int, tloops []Loop) []int64 {
	for k, lk := range tloops {
		s := int64(t.stepCov(n, leaf, lk.Dim))
		for j := k + 1; j < len(tloops); j++ {
			if tloops[j].Dim == lk.Dim {
				s *= int64(tloops[j].Extent)
			}
		}
		dst = append(dst, s)
	}
	return dst
}

// strides is stridesInto with a fresh result slice (tests and cold paths).
func (t *tree) strides(n, leaf int, tloops []Loop) []int64 {
	return t.stridesInto(make([]int64, 0, len(tloops)), n, leaf, tloops)
}

// stridesIntoI is stridesInto on interned dim ids: tldims[k] is the interned
// dim of tloops[k].
func (t *tree) stridesIntoI(dst []int64, n, leaf int, tloops []Loop, tldims []int32) []int64 {
	for k := range tloops {
		s := int64(t.stepCovID(n, leaf, tldims[k]))
		for j := k + 1; j < len(tloops); j++ {
			if tldims[j] == tldims[k] {
				s *= int64(tloops[j].Extent)
			}
		}
		dst = append(dst, s)
	}
	return dst
}

// perExecDM implements the single-tile data-movement formula of Sec 5.1.1:
// the total volume moved across the node's upper boundary during one
// complete execution of node n for the given access. It equals the
// compulsory full slice plus, for every temporal-loop boundary t_k, the
// slice set-difference when loop k advances one chunk and all loops inner
// to it reset, weighted by how often that boundary occurs:
//
//	DM = |Slice| + Σ_k (e_k−1)·Π_{m outer of k} e_m · Δ_k
//
// This reproduces the worked Figure 5 example (168 elements for tensor A).
//
// retain enables wrap-around retention: when a boundary's advancing loop
// does not index the tensor, the "new" slice revisits data the current
// sweep already touched, and if the whole swept footprint fits comfortably
// in this node's buffer the revisit is a hit, not a refetch. (Without a
// capacity model this is the paper's documented overestimation — "it
// assumes data replacement happens for every outer iteration"; with one,
// the model matches the polyhedron baselines on single operators.)
//
// All intermediate vectors live in the evaluator's scratch arena, so
// steady-state calls allocate nothing. This string-keyed form interns the
// access on the fly for tests and cold callers; the hot paths hold the
// precomputed iterms and call perExecDMI.
func (e *evaluator) perExecDM(n, leaf int, acc workload.Access, retain bool) float64 {
	return e.perExecDMI(n, leaf, internAccess(e.t.st, acc), retain)
}

func (e *evaluator) perExecDMI(n, leaf int, iix [][]iterm, retain bool) float64 {
	t, s := e.t, e.s
	if cap(s.exts) < len(iix) {
		s.exts = make([]int64, len(iix))
	}
	exts := t.sliceExtentsIntoI(s.exts[:0], n, leaf, iix)
	vfull := int64(1)
	for _, ext := range exts {
		vfull *= ext
	}
	s.tloops = s.tloops[:0]
	s.tldims = s.tldims[:0]
	ld := t.ldim[n]
	for li, l := range t.nodeSet[n].Loops {
		if l.Kind == Temporal {
			s.tloops = append(s.tloops, l)
			s.tldims = append(s.tldims, ld[li])
		}
	}
	tloops, tldims := s.tloops, s.tldims
	if len(tloops) == 0 {
		return float64(vfull)
	}
	s.strides = t.stridesIntoI(s.strides[:0], n, leaf, tloops, tldims)
	strides := s.strides

	total := float64(vfull)
	outerProd := int64(1) // effective product of extents of loops outer of k
	for k, lk := range tloops {
		if retain {
			// Loops that do not index the tensor neither move its slice
			// nor — under retention — force inner sweeps to refetch:
			// their effective trip count for movement collapses to 1.
			advances := false
			for _, terms := range iix {
				for _, term := range terms {
					if term.dim == tldims[k] {
						advances = true
					}
				}
			}
			if !advances {
				continue
			}
		}
		// Overlap of the new slice with the old one, per tensor dim: the
		// net shift of each iteration dimension when loop k advances and
		// loops inner to it wrap back to their lower bounds is the
		// k-stride on lk.Dim minus the full inner sweeps of the dim.
		overlap := int64(1)
		for i, terms := range iix {
			var d int64
			for _, term := range terms {
				var shift int64
				if term.dim == tldims[k] {
					shift = strides[k]
				}
				for j := k + 1; j < len(tloops); j++ {
					if tldims[j] == term.dim {
						shift -= int64(tloops[j].Extent-1) * strides[j]
					}
				}
				d += term.coef * shift
			}
			if d < 0 {
				d = -d
			}
			ov := exts[i] - d
			if ov < 0 {
				ov = 0
			}
			overlap *= ov
		}
		diff := float64(vfull - overlap)
		mult := float64(int64(lk.Extent-1) * outerProd)
		total += mult * diff
		outerProd *= int64(lk.Extent)
	}
	return total
}

// accessRef is one (leaf, access) occurrence of a tensor in a subtree, with
// the access's iteration-dim set precomputed. The leaf is identified by its
// pre-order id so the reference stays valid across tiling re-binds. iix and
// mask are the interned forms of acc.Index and dims, shared read-only by
// every node's group that folds this reference in.
type accessRef struct {
	leafID int
	op     *workload.Operator
	acc    workload.Access
	dims   map[string]bool
	iix    [][]iterm
	mask   []bool
	// maxWords bounds coveredVolumePerInstance over all valid tilings:
	// validation pins each dim's full leaf-to-root coverage to exactly the
	// operator's dim size, so no sub-path coverage can exceed it. When the
	// bound already fits the retention budget the evaluator skips the
	// per-tiling covered-volume walk.
	maxWords int64
}

// accessMaxWords computes the accessRef.maxWords bound from the operator's
// dim sizes: per tensor dim, extents peak at 1 + Σ coef·(size−1) over the
// positive-coefficient terms (negative terms only shrink the extent, and
// extents clamp at 1).
func accessMaxWords(op *workload.Operator, acc workload.Access) int64 {
	v := int64(1)
	for _, ix := range acc.Index {
		e := int64(1)
		for _, term := range ix.Terms {
			if term.Coef <= 0 {
				continue
			}
			size := op.DimSize(term.Dim)
			if size < 1 {
				size = 1
			}
			e += int64(term.Coef) * int64(size-1)
		}
		v *= e
	}
	return v
}

// tensorGroup aggregates every access to one tensor by operators in a
// node's subtree, split by direction, with the per-direction invocation dim
// sets and the Seq-eviction verdict precomputed at compile time.
type tensorGroup struct {
	tensor string
	reads  []accessRef
	writes []accessRef
	// readDims is the union of the read accesses' iteration dims: ancestor
	// loops over other dims leave the staged slices unchanged, so only
	// these dims multiply fill invocations.
	readDims map[string]bool
	// writeDims additionally includes the writers' reduction dims, which
	// force partial-sum round trips.
	writeDims map[string]bool
	// readMask/writeMask are readDims/writeDims as masks over interned dim
	// ids, the form the hot invocation counting consumes.
	readMask, writeMask []bool
	// tensorID indexes the Program's attributed-tensor list (the scratch
	// arena's flat per-tensor rows), or -1 when this group's traffic is
	// never attributed. Assigned by Compile; -1 until then.
	tensorID int
	// evicts marks Seq eviction (Sec 5.1.2): under Seq a tile's slices are
	// evicted unless the following tile needs them, so a tensor used by a
	// strict subset of the children loses all reuse at this node.
	evicts bool
}

// buildStructure computes the remaining tiling-independent tables for a
// freshly indexed tree — subtree sizes, subtree dim sets, and per-node
// tensor access groups with their invocation closures — in one bottom-up
// pass over the pre-order ids (descending id order visits children before
// parents).
func buildStructure(t *tree) {
	n := len(t.nodeSet)
	st := t.st
	st.size = make([]int, n)
	st.dims = make([]map[string]bool, n)
	st.dimMask = make([][]bool, n)
	st.groups = make([][]tensorGroup, n)
	idxOf := make([]map[string]int, n) // tensor -> group index, per node
	for id := n - 1; id >= 0; id-- {
		nd := t.nodeSet[id]
		dims := map[string]bool{}
		var groups []tensorGroup
		idx := map[string]int{}
		grp := func(tensor string) *tensorGroup {
			gi, ok := idx[tensor]
			if !ok {
				gi = len(groups)
				idx[tensor] = gi
				groups = append(groups, tensorGroup{tensor: tensor, tensorID: -1})
			}
			return &groups[gi]
		}
		size := 1
		if nd.IsLeaf() {
			op := nd.Op
			for _, d := range op.Dims {
				dims[d.Name] = true
			}
			for _, r := range op.Reads {
				g := grp(r.Tensor)
				rd := accessDims(r)
				g.reads = append(g.reads, accessRef{leafID: id, op: op, acc: r,
					dims: rd, iix: internAccess(st, r), mask: dimMaskOf(st, rd),
					maxWords: accessMaxWords(op, r)})
			}
			w := op.Write
			g := grp(w.Tensor)
			wd := accessDims(w)
			g.writes = append(g.writes, accessRef{leafID: id, op: op, acc: w,
				dims: wd, iix: internAccess(st, w), mask: dimMaskOf(st, wd),
				maxWords: accessMaxWords(op, w)})
		} else {
			for _, cid := range st.children[id] {
				size += st.size[cid]
				for d := range st.dims[cid] {
					dims[d] = true
				}
				for _, cg := range st.groups[cid] {
					g := grp(cg.tensor)
					g.reads = append(g.reads, cg.reads...)
					g.writes = append(g.writes, cg.writes...)
				}
			}
		}
		for gi := range groups {
			g := &groups[gi]
			g.readDims = map[string]bool{}
			for _, r := range g.reads {
				for d := range r.dims {
					g.readDims[d] = true
				}
			}
			g.writeDims = map[string]bool{}
			for _, w := range g.writes {
				for d := range w.dims {
					g.writeDims[d] = true
				}
				for _, rd := range w.op.ReductionDims() {
					g.writeDims[rd] = true
				}
			}
			g.readMask = dimMaskOf(st, g.readDims)
			g.writeMask = dimMaskOf(st, g.writeDims)
			if nd.Binding == Seq && len(nd.Children) >= 2 {
				for _, cid := range st.children[id] {
					if _, uses := idxOf[cid][g.tensor]; !uses {
						g.evicts = true
						break
					}
				}
			}
		}
		st.size[id] = size
		st.dims[id] = dims
		st.dimMask[id] = dimMaskOf(st, dims)
		st.groups[id] = groups
		idxOf[id] = idx
	}
}

// relevantInvocations counts how many times node n executes in total: the
// product over strict ancestors of the extents of their loops whose
// dimension is relevant to the subtree hanging toward n. Ancestor loops
// over dimensions no operator under the path-child iterates do not
// re-execute the subtree (the result is reused in place).
func (t *tree) relevantInvocations(n int) float64 {
	return t.invocationsWhere(n, nil)
}

// invocationsWhere is relevantInvocations restricted: when onlyDims is
// non-nil, only ancestor loops over those dimensions count. It is used to
// compute how many distinct output versions a node drains (write-relevant
// dims only) versus how many times it drains (all relevant dims).
func (t *tree) invocationsWhere(n int, onlyDims map[string]bool) float64 {
	inv := 1.0
	child := n
	for a := t.st.parent[n]; a >= 0; a = t.st.parent[a] {
		rel := t.st.dims[child]
		for _, l := range t.nodeSet[a].Loops {
			if !rel[l.Dim] {
				continue
			}
			if onlyDims != nil && !onlyDims[l.Dim] {
				continue
			}
			inv *= float64(l.Extent)
		}
		child = a
	}
	return inv
}

// invocationsMask is invocationsWhere on interned dim masks: the hot form
// the evaluator uses. It walks the same ancestors in the same order and
// multiplies the same extents under the same membership conditions, so the
// float accumulation is bit-identical to the map form. only == nil means
// unrestricted (relevantInvocations).
func (t *tree) invocationsMask(n int, only []bool) float64 {
	inv := 1.0
	child := n
	for a := t.st.parent[n]; a >= 0; a = t.st.parent[a] {
		rel := t.st.dimMask[child]
		ld := t.ldim[a]
		loops := t.nodeSet[a].Loops
		for li, d := range ld {
			if d < 0 || !rel[d] {
				continue
			}
			if only != nil && !only[d] {
				continue
			}
			inv *= float64(loops[li].Extent)
		}
		child = a
	}
	return inv
}

// subtreeDims reports the set of iteration dimensions of all operators in
// the subtree, precomputed at compile time.
func (t *tree) subtreeDims(n int) map[string]bool {
	return t.st.dims[n]
}

// accessDims is the set of iteration dims an access refers to.
func accessDims(acc workload.Access) map[string]bool {
	m := map[string]bool{}
	for _, d := range acc.Dims() {
		m[d] = true
	}
	return m
}
