package core

import (
	"repro/internal/arch"
	"repro/internal/workload"
)

// Static analysis: every rejection Compile and Evaluate can produce,
// re-run as a collecting pass that needs no Program and no evaluation.
// Each rule here is an exact port of the corresponding fail-fast check —
// same predicate, same error message — which gives the two properties the
// callers rely on:
//
//   - no false clean: any mapping Compile/Evaluate rejects trips at least
//     one rule (the first collected violation carries the very error the
//     pipeline would have returned);
//   - no false positive: a mapping with zero violations compiles and
//     passes every structural, tiling and resource check, so mappers may
//     prune on violations without changing search results on valid points.
//
// The capacity rule is the only one needing the compiled access-group
// tables; QuickReject therefore skips it (statically-capacity-bound points
// fall through to full evaluation), while AnalyzeStatic builds the tree
// tables — but never a Program — and checks it too.

// Rule keys identify the static rules. They are stable: internal/check maps
// them to public diagnostic codes.
const (
	RuleArch          = "arch-spec"        // architecture spec invalid
	RuleLeafChildren  = "leaf-children"    // leaf tile has children
	RuleDupOp         = "dup-op"           // operator appears in two leaves
	RuleInteriorEmpty = "interior-empty"   // interior node without children
	RuleLevelOrder    = "level-order"      // child level above its parent
	RuleOpNoLeaf      = "op-no-leaf"       // operator has no leaf tile
	RuleLevelRange    = "level-range"      // node level outside architecture
	RuleCoverage      = "tiling-coverage"  // loop extents do not tile a dim exactly
	RuleLoopExtent    = "loop-extent"      // loop extent < 1
	RuleLoopDim       = "loop-dim"         // loop over a dim foreign to the subtree
	RulePEBudget      = "pe-budget"        // spatial fanout exceeds the PE array
	RuleUnitUsage     = "unit-usage"       // level instance occupancy exceeded
	RuleCapacity      = "capacity"         // per-instance footprint over buffer capacity
)

// Violation is one statically detected problem: a rule key plus enough
// locus (node, operator, dim, loop index, level) for a front-end to point
// at the offending token, and the exact error the Compile/Evaluate
// pipeline would have produced (errors.Is-matching ErrInvalidMapping or
// ErrInfeasible).
type Violation struct {
	Rule string
	Node string // tile name, "" for graph- or arch-level rules
	Op   string // operator name, when the rule concerns one
	Dim  string // dimension name, when the rule concerns one
	Loop int    // index into the node's Loops, -1 otherwise
	Lvl  int    // memory level, -1 otherwise
	Err  error
}

// Infeasible reports whether the violation is a resource limit
// (ErrInfeasible) rather than a structural error (ErrInvalidMapping).
func (v Violation) Infeasible() bool { return isMark(v.Err, ErrInfeasible) }

func isMark(err, mark error) bool {
	if err == nil {
		return false
	}
	type iser interface{ Is(error) bool }
	if m, ok := err.(iser); ok {
		return m.Is(mark)
	}
	return err == mark
}

func violation(rule string, err error) Violation {
	return Violation{Rule: rule, Loop: -1, Lvl: -1, Err: err}
}

// AnalyzeStatic runs every static legality and resource rule over the tree
// and returns all violations, in the order the fail-fast pipeline would
// encounter them — so for any rejected mapping, the first violation's Err
// has the same text Compile/Evaluate would return (capacity aside when
// structural errors precede it). It never allocates a Program; the only
// compiled state it builds is the tree's own index tables.
func AnalyzeStatic(root *Node, g *workload.Graph, spec *arch.Spec, opts Options) []Violation {
	var vs []Violation
	if err := spec.Validate(); err != nil {
		vs = append(vs, violation(RuleArch, err))
		return vs // no level geometry to check against
	}
	vs = append(vs, collectStructural(root)...)
	if len(vs) > 0 {
		// The tree cannot be indexed; graph-level rules still apply.
		leafOf := leafOperators(root)
		for _, op := range g.Ops {
			if leafOf[op] == nil {
				v := violation(RuleOpNoLeaf, invalidf("core: operator %q has no leaf tile in the tree", op.Name))
				v.Op = op.Name
				vs = append(vs, v)
			}
		}
		return vs
	}
	t, err := buildTree(root)
	if err != nil {
		// Unreachable when collectStructural mirrors buildTree; kept as a
		// safety net so a drift bug degrades to a reported violation
		// instead of a false clean.
		return append(vs, violation(RuleLevelOrder, err))
	}

	// validateStructure, collecting.
	levelsOK := true
	for _, op := range g.Ops {
		if _, ok := t.st.leafOf[op]; !ok {
			v := violation(RuleOpNoLeaf, invalidf("core: operator %q has no leaf tile in the tree", op.Name))
			v.Op = op.Name
			vs = append(vs, v)
		}
	}
	for _, n := range t.nodeSet {
		if n.Level < 0 || n.Level >= spec.NumLevels() {
			v := violation(RuleLevelRange, invalidf("core: node %q level %d outside architecture with %d levels", n.Name, n.Level, spec.NumLevels()))
			v.Node = n.Name
			vs = append(vs, v)
			levelsOK = false
		}
	}

	// validateTiling, collecting.
	for _, op := range g.Ops {
		leafID, ok := t.st.leafOf[op]
		if !ok {
			continue // reported above
		}
		for _, d := range op.Dims {
			cov := 1
			for m := leafID; m >= 0; m = t.st.parent[m] {
				cov *= t.nodeSet[m].DimExtent(d.Name)
			}
			if cov != d.Size {
				v := violation(RuleCoverage, invalidf("core: operator %q dim %q tiled to %d, want %d", op.Name, d.Name, cov, d.Size))
				v.Op, v.Dim, v.Node = op.Name, d.Name, t.nodeSet[leafID].Name
				vs = append(vs, v)
			}
		}
	}
	for i, n := range t.nodeSet {
		for li, l := range n.Loops {
			if l.Extent < 1 {
				v := violation(RuleLoopExtent, invalidf("core: node %q loop %s has extent < 1", n.Name, l))
				v.Node, v.Dim, v.Loop = n.Name, l.Dim, li
				vs = append(vs, v)
			}
			if !t.subtreeDims(i)[l.Dim] {
				v := violation(RuleLoopDim, invalidf("core: node %q loop over dim %q that no operator in its subtree iterates", n.Name, l.Dim))
				v.Node, v.Dim, v.Loop = n.Name, l.Dim, li
				vs = append(vs, v)
			}
		}
	}

	// Resource rules. Levels must be in range before indexing spec tables.
	if !levelsOK {
		return vs
	}
	if !opts.SkipPECheck {
		if used, have := NumPE(root), spec.TotalPEs(); used > have {
			v := violation(RulePEBudget, infeasiblef("core: mapping uses %d PEs, chip has %d", used, have))
			v.Node = root.Name
			vs = append(vs, v)
		}
		uu := unitUsage(root, spec.NumLevels())
		for l := 0; l < spec.DRAMLevel(); l++ {
			if inst := spec.Instances(l); uu[l] > inst {
				v := violation(RuleUnitUsage, infeasiblef("core: mapping occupies %d level-%d (%s) instances, chip has %d",
					uu[l], l, spec.Levels[l].Name, inst))
				v.Node, v.Lvl = root.Name, l
				vs = append(vs, v)
			}
		}
	}
	if !opts.SkipCapacityCheck {
		confine := t.confinements(g)
		rel := confRelTable(t, confine)
		rows := make([]int64, len(t.nodeSet)*spec.NumLevels())
		fp := t.footprintInto(rows, spec.NumLevels(), rel, densityOf(g))
		for l := 0; l < spec.DRAMLevel(); l++ {
			if need, have := fp[l], spec.CapacityWords(l); need > have {
				v := violation(RuleCapacity, &CapacityError{Level: l, LevelName: spec.Levels[l].Name, NeedWords: need, HaveWords: have})
				v.Lvl = l
				vs = append(vs, v)
			}
		}
	}
	return vs
}

// collectStructural is the collecting port of buildTree's fail-fast
// validation, visiting nodes in the same pre-order so the first violation
// matches buildTree's error.
func collectStructural(root *Node) []Violation {
	var vs []Violation
	leafOf := map[*workload.Operator]*Node{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if n.IsLeaf() {
			if len(n.Children) > 0 {
				v := violation(RuleLeafChildren, invalidf("core: leaf %q has children", n.Name))
				v.Node = n.Name
				vs = append(vs, v)
				return // do not descend: the subtree is not a tile tree
			}
			if prev := leafOf[n.Op]; prev != nil {
				v := violation(RuleDupOp, invalidf("core: operator %q appears in two leaves (%q, %q)", n.Op.Name, prev.Name, n.Name))
				v.Node, v.Op = n.Name, n.Op.Name
				vs = append(vs, v)
				return
			}
			leafOf[n.Op] = n
			return
		}
		if len(n.Children) == 0 {
			v := violation(RuleInteriorEmpty, invalidf("core: interior node %q has no children and no operator", n.Name))
			v.Node = n.Name
			vs = append(vs, v)
			return
		}
		for _, c := range n.Children {
			if c.Level > n.Level {
				v := violation(RuleLevelOrder, invalidf("core: child %q at level %d above parent %q at level %d", c.Name, c.Level, n.Name, n.Level))
				v.Node = c.Name
				vs = append(vs, v)
			}
			visit(c)
		}
	}
	visit(root)
	return vs
}

// leafOperators maps each operator to its (first) leaf without requiring a
// structurally valid tree.
func leafOperators(root *Node) map[*workload.Operator]*Node {
	out := map[*workload.Operator]*Node{}
	root.Walk(func(n *Node) {
		if n.IsLeaf() && out[n.Op] == nil {
			out[n.Op] = n
		}
	})
	return out
}

// QuickReject is the mapper's pre-screen: the subset of AnalyzeStatic that
// runs in one tree walk with no compiled tables at all — structural
// legality, tiling coverage, loop dims, and (per opts) the PE and
// instance-occupancy budgets. It fails fast and returns the exact error
// the Compile/Evaluate pipeline would produce, or nil when no static rule
// (capacity excepted, which needs compiled access groups) rejects the
// point. A nil result therefore never changes search outcomes: the point
// proceeds to full evaluation exactly as before.
func QuickReject(root *Node, g *workload.Graph, spec *arch.Spec, opts Options) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	// One pass replays buildTree's checks while gathering the parent links
	// and subtree dim sets the tiling rules need.
	parent := map[*Node]*Node{}
	leafOf := map[*workload.Operator]*Node{}
	dims := map[*Node]map[string]bool{}
	var nodes []*Node
	var ferr error
	var visit func(n *Node) map[string]bool
	visit = func(n *Node) map[string]bool {
		nodes = append(nodes, n)
		if n.IsLeaf() {
			if len(n.Children) > 0 {
				ferr = invalidf("core: leaf %q has children", n.Name)
				return nil
			}
			if prev := leafOf[n.Op]; prev != nil {
				ferr = invalidf("core: operator %q appears in two leaves (%q, %q)", n.Op.Name, prev.Name, n.Name)
				return nil
			}
			leafOf[n.Op] = n
			d := map[string]bool{}
			for _, dim := range n.Op.Dims {
				d[dim.Name] = true
			}
			dims[n] = d
			return d
		}
		if len(n.Children) == 0 {
			ferr = invalidf("core: interior node %q has no children and no operator", n.Name)
			return nil
		}
		d := map[string]bool{}
		for _, c := range n.Children {
			if c.Level > n.Level {
				ferr = invalidf("core: child %q at level %d above parent %q at level %d", c.Name, c.Level, n.Name, n.Level)
				return nil
			}
			parent[c] = n
			cd := visit(c)
			if ferr != nil {
				return nil
			}
			for dim := range cd {
				d[dim] = true
			}
		}
		dims[n] = d
		return d
	}
	visit(root)
	if ferr != nil {
		return ferr
	}
	// validateStructure.
	for _, op := range g.Ops {
		if leafOf[op] == nil {
			return invalidf("core: operator %q has no leaf tile in the tree", op.Name)
		}
	}
	for _, n := range nodes {
		if n.Level < 0 || n.Level >= spec.NumLevels() {
			return invalidf("core: node %q level %d outside architecture with %d levels", n.Name, n.Level, spec.NumLevels())
		}
	}
	// validateTiling.
	for _, op := range g.Ops {
		leaf := leafOf[op]
		for _, d := range op.Dims {
			cov := 1
			for m := leaf; m != nil; m = parent[m] {
				cov *= m.DimExtent(d.Name)
			}
			if cov != d.Size {
				return invalidf("core: operator %q dim %q tiled to %d, want %d", op.Name, d.Name, cov, d.Size)
			}
		}
	}
	for _, n := range nodes {
		for _, l := range n.Loops {
			if l.Extent < 1 {
				return invalidf("core: node %q loop %s has extent < 1", n.Name, l)
			}
			if !dims[n][l.Dim] {
				return invalidf("core: node %q loop over dim %q that no operator in its subtree iterates", n.Name, l.Dim)
			}
		}
	}
	if !opts.SkipPECheck {
		if used, have := NumPE(root), spec.TotalPEs(); used > have {
			return infeasiblef("core: mapping uses %d PEs, chip has %d", used, have)
		}
		uu := unitUsage(root, spec.NumLevels())
		for l := 0; l < spec.DRAMLevel(); l++ {
			if inst := spec.Instances(l); uu[l] > inst {
				return infeasiblef("core: mapping occupies %d level-%d (%s) instances, chip has %d",
					uu[l], l, spec.Levels[l].Name, inst)
			}
		}
	}
	return nil
}
