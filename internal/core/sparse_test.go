package core

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/workload"
)

// sparseTree builds the Fig 8-style matmul mapping used by the sparse
// extension tests.
func sparseTree(g *workload.Graph) *Node {
	leaf := Leaf("leaf", g.Ops[0], S("m", 16), S("n", 16))
	l1 := Tile("l1", 1, Seq, []Loop{T("m", 16), T("n", 16), T("k", 256)}, leaf)
	return Tile("root", 2, Seq, nil, l1)
}

// TestSparseScalesTraffic: marking one operand sparse (the Sec 7.7
// extension) scales its traffic and the op's effective compute by its
// density, leaving dense tensors untouched.
func TestSparseScalesTraffic(t *testing.T) {
	spec := arch.Validation()
	dense := workload.Matmul(256, 256, 256)
	rd, err := Evaluate(sparseTree(dense), dense, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}

	sparse := workload.Matmul(256, 256, 256)
	if err := sparse.SetDensity("A", 0.25); err != nil {
		t.Fatal(err)
	}
	rs, err := Evaluate(sparseTree(sparse), sparse, spec, Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}

	// A's traffic scales by 0.25 at every level it touches.
	for lvl := range rd.TensorDM["A"] {
		d, s := rd.TensorDM["A"][lvl].Total(), rs.TensorDM["A"][lvl].Total()
		if d == 0 {
			continue
		}
		if ratio := s / d; ratio < 0.24 || ratio > 0.26 {
			t.Errorf("A level %d traffic ratio %v, want 0.25", lvl, ratio)
		}
	}
	// B stays dense.
	if rd.TensorDM["B"][2].Total() != rs.TensorDM["B"][2].Total() {
		t.Error("dense operand traffic changed")
	}
	// Effective MACs gate on A's zeros.
	if ratio := rs.MACs / rd.MACs; ratio != 0.25 {
		t.Errorf("effective MACs ratio %v, want 0.25", ratio)
	}
	if rs.ComputeCycles >= rd.ComputeCycles {
		t.Errorf("sparse compute %v not below dense %v", rs.ComputeCycles, rd.ComputeCycles)
	}
}

func TestSetDensityValidates(t *testing.T) {
	g := workload.Matmul(8, 8, 8)
	if err := g.SetDensity("A", 0); err == nil {
		t.Error("want density-range error")
	}
	if err := g.SetDensity("A", 1.5); err == nil {
		t.Error("want density-range error")
	}
	if err := g.SetDensity("nope", 0.5); err == nil {
		t.Error("want unknown-tensor error")
	}
	if err := g.SetDensity("A", 0.5); err != nil {
		t.Error(err)
	}
	if g.Density("A") != 0.5 || g.Density("B") != 1 {
		t.Error("density lookup wrong")
	}
	if d := g.OpDensity(g.Ops[0]); d != 0.5 {
		t.Errorf("op density = %v", d)
	}
}

// TestPropertySparseMonotone: lowering any operand's density never
// increases traffic, cycles or energy.
func TestPropertySparseMonotone(t *testing.T) {
	spec := arch.Validation()
	prop := func(dq uint8) bool {
		d := float64(dq%9+1) / 10.0 // 0.1 .. 0.9
		g := workload.Matmul(256, 256, 256)
		if err := g.SetDensity("B", d); err != nil {
			return false
		}
		rs, err := Evaluate(sparseTree(g), g, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		dense := workload.Matmul(256, 256, 256)
		rd, err := Evaluate(sparseTree(dense), dense, spec, Options{SkipCapacityCheck: true})
		if err != nil {
			return false
		}
		return rs.DRAMTraffic() <= rd.DRAMTraffic()+0.5 &&
			rs.Cycles <= rd.Cycles+1e-9 &&
			rs.EnergyPJ() <= rd.EnergyPJ()+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSparseAttention exercises the extension on a realistic workload: a
// Sanger-style sparse attention where the score matrix and its softmax
// descendants are 10% dense.
func TestSparseAttention(t *testing.T) {
	shape := workload.AttentionShape{Name: "sparse", Heads: 8, SeqLen: 256, Hidden: 512, Batch: 1}
	mk := func(sparse bool) (*workload.Graph, *Node) {
		g := workload.Attention(shape)
		if sparse {
			for _, tensor := range []string{"S", "Sh", "E", "L"} {
				if err := g.SetDensity(tensor, 0.1); err != nil {
					t.Fatal(err)
				}
			}
		}
		// A simple fused tree: everything under one Shar stage.
		var kids []*Node
		for _, op := range g.Ops {
			var loops []Loop
			for _, d := range op.Dims {
				loops = append(loops, T(d.Name, d.Size))
			}
			kids = append(kids, Leaf(op.Name, op, loops...))
		}
		stage := Tile("stage", 1, Shar, nil, kids...)
		return g, Tile("root", 2, Seq, nil, stage)
	}
	gd, td := mk(false)
	rd, err := Evaluate(td, gd, arch.Edge(), Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	gs, ts := mk(true)
	rs, err := Evaluate(ts, gs, arch.Edge(), Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs.OnChipTraffic() >= rd.OnChipTraffic() {
		t.Errorf("sparse on-chip %v not below dense %v", rs.OnChipTraffic(), rd.OnChipTraffic())
	}
	if rs.FootprintWords[1] >= rd.FootprintWords[1] {
		t.Errorf("sparse staging %v not below dense %v", rs.FootprintWords[1], rd.FootprintWords[1])
	}
	// Q/K/V stay dense: their DRAM traffic is unchanged.
	for _, tensor := range []string{"Q", "K", "V"} {
		if rd.TensorDM[tensor][2].Total() != rs.TensorDM[tensor][2].Total() {
			t.Errorf("dense input %s traffic changed", tensor)
		}
	}
}
