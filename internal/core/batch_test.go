package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// perturbedTilings builds n tilings of the benchmark structure by walking
// the dataflow's factor space with a seeded RNG (one random factor moves
// to a random divisor per step). Some candidates are infeasible (over
// capacity), which is exactly what a mapper feeds the batch API.
func perturbedTilings(tb testing.TB, seed int64, n int) []*core.Node {
	tb.Helper()
	_, tilings := perturbedFactorWalk(tb, seed, n)
	return tilings
}

func perturbedFactorWalk(tb testing.TB, seed int64, n int) (dataflows.Dataflow, []*core.Node) {
	tb.Helper()
	shape, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		tb.Fatal("attention shape Bert-S not found")
	}
	df := dataflows.FLATRGran(shape, arch.Edge())
	specs := df.Factors()
	rng := rand.New(rand.NewSource(seed))
	f := df.DefaultFactors()
	tilings := make([]*core.Node, 0, n)
	for len(tilings) < n {
		nf := make(map[string]int, len(f))
		for k, v := range f {
			nf[k] = v
		}
		fs := specs[rng.Intn(len(specs))]
		ch := fs.Choices()
		nf[fs.Key] = ch[rng.Intn(len(ch))]
		cand, err := df.Build(nf)
		if err != nil {
			continue
		}
		f = nf
		tilings = append(tilings, cand)
	}
	return df, tilings
}

// TestEvaluateBatchMatchesCold pins the batch route to the cold route over
// 120 seeded design points: identical results (via canonical JSON
// rendering in the conformance package's spirit — here deep comparison)
// and identical error texts, item by item.
func TestEvaluateBatchMatchesCold(t *testing.T) {
	df, tilings := perturbedFactorWalk(t, 701, 120)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	results, errs := prog.EvaluateBatch(context.Background(), tilings, core.Options{})
	if len(results) != len(tilings) || len(errs) != len(tilings) {
		t.Fatalf("batch returned %d results / %d errs for %d tilings", len(results), len(errs), len(tilings))
	}
	// The cold route evaluates each tiling against the graph it was built
	// over (a canonically equal copy of prog's graph; the batch route
	// matches operators by name).
	okCount := 0
	for i, cand := range tilings {
		cold, coldErr := core.Evaluate(cand, df.Graph(), spec, core.Options{})
		if (coldErr == nil) != (errs[i] == nil) {
			t.Fatalf("item %d: cold err %v, batch err %v", i, coldErr, errs[i])
		}
		if coldErr != nil {
			if coldErr.Error() != errs[i].Error() {
				t.Fatalf("item %d: cold err %q, batch err %q", i, coldErr, errs[i])
			}
			continue
		}
		okCount++
		assertResultsIdentical(t, fmt.Sprintf("batch item %d", i), cold, results[i])
	}
	if okCount == 0 {
		t.Fatal("no feasible points in the batch; test exercised nothing")
	}
	t.Logf("batch matched cold on %d feasible + %d infeasible points", okCount, len(tilings)-okCount)
}

// assertResultsIdentical compares every field of two Results for exact
// (bitwise, for floats) equality.
func assertResultsIdentical(t *testing.T, what string, a, b *core.Result) {
	t.Helper()
	if a.Cycles != b.Cycles || a.ComputeCycles != b.ComputeCycles {
		t.Fatalf("%s: cycles %v/%v vs %v/%v", what, a.Cycles, a.ComputeCycles, b.Cycles, b.ComputeCycles)
	}
	if a.MACs != b.MACs || a.VectorOps != b.VectorOps {
		t.Fatalf("%s: ops differ", what)
	}
	if a.PEsUsed != b.PEsUsed || a.TotalPEs != b.TotalPEs || a.Utilization != b.Utilization {
		t.Fatalf("%s: PE figures differ", what)
	}
	if len(a.DM) != len(b.DM) {
		t.Fatalf("%s: DM lengths differ", what)
	}
	for l := range a.DM {
		if a.DM[l] != b.DM[l] {
			t.Fatalf("%s: DM[%d] %+v vs %+v", what, l, a.DM[l], b.DM[l])
		}
	}
	if len(a.TensorDM) != len(b.TensorDM) {
		t.Fatalf("%s: TensorDM key sets differ: %d vs %d", what, len(a.TensorDM), len(b.TensorDM))
	}
	for k, av := range a.TensorDM {
		bv, ok := b.TensorDM[k]
		if !ok || len(av) != len(bv) {
			t.Fatalf("%s: TensorDM[%q] missing or wrong length", what, k)
		}
		for l := range av {
			if av[l] != bv[l] {
				t.Fatalf("%s: TensorDM[%q][%d] %+v vs %+v", what, k, l, av[l], bv[l])
			}
		}
	}
	for l := range a.UnitUsage {
		if a.UnitUsage[l] != b.UnitUsage[l] {
			t.Fatalf("%s: UnitUsage[%d] differs", what, l)
		}
	}
	for l := range a.FootprintWords {
		if a.FootprintWords[l] != b.FootprintWords[l] {
			t.Fatalf("%s: FootprintWords[%d] %d vs %d", what, l, a.FootprintWords[l], b.FootprintWords[l])
		}
	}
	for l := range a.SlowDown {
		if a.SlowDown[l] != b.SlowDown[l] || a.BandwidthReqGBs[l] != b.BandwidthReqGBs[l] {
			t.Fatalf("%s: slowdown/bandwidth[%d] differ", what, l)
		}
	}
	if a.Energy.ComputePJ != b.Energy.ComputePJ {
		t.Fatalf("%s: compute energy differs", what)
	}
	for l := range a.Energy.PerLevelPJ {
		if a.Energy.PerLevelPJ[l] != b.Energy.PerLevelPJ[l] {
			t.Fatalf("%s: energy[%d] differs", what, l)
		}
	}
}

// TestEvaluateBatchConcurrent runs 8 goroutines through EvaluateBatch on
// one shared Program (run under -race in CI). Each goroutine checks its
// own items against the cold route.
func TestEvaluateBatchConcurrent(t *testing.T) {
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			df, tilings := perturbedFactorWalk(t, int64(1000+w), 25)
			results, errs := prog.EvaluateBatch(context.Background(), tilings, core.Options{})
			for i, cand := range tilings {
				cold, coldErr := core.Evaluate(cand, df.Graph(), spec, core.Options{})
				if (coldErr == nil) != (errs[i] == nil) {
					errCh <- fmt.Errorf("worker %d item %d: cold err %v, batch err %v", w, i, coldErr, errs[i])
					return
				}
				if coldErr != nil {
					continue
				}
				if results[i].Cycles != cold.Cycles || results[i].EnergyPJ() != cold.EnergyPJ() {
					errCh <- fmt.Errorf("worker %d item %d: result mismatch", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestEvaluateBatchCancellation: once the context is done, remaining items
// fail with ctx.Err() and are not evaluated.
func TestEvaluateBatchCancellation(t *testing.T) {
	tilings := perturbedTilings(t, 42, 10)
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := prog.EvaluateBatch(ctx, tilings, core.Options{})
	for i := range tilings {
		if results[i] != nil || !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("item %d not cancelled: res=%v err=%v", i, results[i], errs[i])
		}
	}
}
