package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestTableForHierarchy(t *testing.T) {
	spec := arch.Cloud()
	tab := TableFor(spec)
	if len(tab.PerAccessPJ) != spec.NumLevels() {
		t.Fatalf("levels = %d", len(tab.PerAccessPJ))
	}
	// The cost ladder: registers < SRAM levels < DRAM.
	if tab.PerAccessPJ[0] != RegisterAccessPJ {
		t.Errorf("reg = %v", tab.PerAccessPJ[0])
	}
	last := tab.PerAccessPJ[len(tab.PerAccessPJ)-1]
	if last != DRAMAccessPJ {
		t.Errorf("dram = %v", last)
	}
	for i := 1; i < spec.DRAMLevel(); i++ {
		if tab.PerAccessPJ[i] <= tab.PerAccessPJ[0] || tab.PerAccessPJ[i] >= last {
			t.Errorf("level %d access cost %v outside (reg, dram)", i, tab.PerAccessPJ[i])
		}
	}
	// Capacity monotonicity drives Fig 13: the 40MB L2 costs at least as
	// much per access as the 20MB L1 (both may sit at the banking cap).
	if tab.PerAccessPJ[2] < tab.PerAccessPJ[1] {
		t.Errorf("L2 %v below L1 %v", tab.PerAccessPJ[2], tab.PerAccessPJ[1])
	}
}

func TestEstimateBreakdown(t *testing.T) {
	tab := TableFor(arch.Edge())
	bd := tab.Estimate([]float64{100, 200, 10}, 50, 20)
	wantCompute := 50*MACEnergyPJ + 20*VectorOpPJ
	if bd.ComputePJ != wantCompute {
		t.Errorf("compute = %v, want %v", bd.ComputePJ, wantCompute)
	}
	if bd.TotalPJ() <= bd.ComputePJ {
		t.Error("total must include level energy")
	}
	sum := bd.ComputePJ
	for i := range bd.PerLevelPJ {
		sum += bd.PerLevelPJ[i]
	}
	if math.Abs(sum-bd.TotalPJ()) > 1e-9 {
		t.Errorf("total %v != sum %v", bd.TotalPJ(), sum)
	}
	if f := bd.Fraction(2); f <= 0 || f >= 1 {
		t.Errorf("fraction = %v", f)
	}
}

// TestPropertySRAMMonotone: larger buffers cost more per access.
func TestPropertySRAMMonotone(t *testing.T) {
	prop := func(a, b uint32) bool {
		x, y := int64(a%(1<<24))+1024, int64(b%(1<<24))+1024
		if x > y {
			x, y = y, x
		}
		return SRAMAccessPJ(x) <= SRAMAccessPJ(y) && SRAMAccessPJ(x) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyEstimateLinear: energy is linear in access counts.
func TestPropertyEstimateLinear(t *testing.T) {
	tab := TableFor(arch.Edge())
	prop := func(a, b, c uint16, macs uint16) bool {
		acc := []float64{float64(a), float64(b), float64(c)}
		double := []float64{2 * float64(a), 2 * float64(b), 2 * float64(c)}
		e1 := tab.Estimate(acc, float64(macs), 0).TotalPJ()
		e2 := tab.Estimate(double, 2*float64(macs), 0).TotalPJ()
		return math.Abs(e2-2*e1) < 1e-6*math.Max(1, e2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
