// Package energy provides an Accelergy-style per-access energy model
// (Sec 5.3: "For energy estimation, we use existing energy estimation
// frameworks [45, 64] by passing them the total number of memory access
// operations ... and computation operations").
//
// Energy is the dot product of access counts per memory level with a
// per-access cost table, plus compute energy per MAC / vector op. SRAM
// per-access energy grows with buffer capacity, which is the effect behind
// Fig 13 ("The SRAM buffer size dictates the read/write energy of L1
// buffer"): with a larger L1, L1 access energy dominates the breakdown.
package energy

import (
	"fmt"
	"math"

	"repro/internal/arch"
)

// Per-access and per-op energy constants, in picojoules for 16-bit words.
// The scale follows the familiar Eyeriss/Accelergy hierarchy: register ≈
// MAC ≈ 1 pJ, on-chip SRAM a handful of pJ growing with capacity, DRAM two
// orders of magnitude above the rest.
const (
	RegisterAccessPJ = 1.0
	DRAMAccessPJ     = 200.0
	MACEnergyPJ      = 1.0
	VectorOpPJ       = 2.0

	// SRAM per-access energy model: sramBasePJ + sramSlopePJ·capacityKB up
	// to sramLinearKB, then square-root growth (large SRAMs are banked, so
	// per-access energy grows with the bank wordline, not total capacity),
	// capped below DRAM. The near-linear region reproduces the Fig 13
	// breakdown shift between a 200 KB and a 1 MB L1.
	sramBasePJ   = 1.2
	sramSlopePJ  = 0.033
	sramLinearKB = 4096.0
	sramCapPJ    = 0.6 * DRAMAccessPJ
)

// SRAMAccessPJ is the per-word access energy of an on-chip SRAM of the given
// capacity in bytes.
func SRAMAccessPJ(capacityBytes int64) float64 {
	kb := float64(capacityBytes) / 1024.0
	e := sramBasePJ
	if kb <= sramLinearKB {
		e += sramSlopePJ * kb
	} else {
		e += sramSlopePJ*sramLinearKB + math.Sqrt(kb-sramLinearKB)*0.2
	}
	if e > sramCapPJ {
		e = sramCapPJ
	}
	return e
}

// Table holds per-access energies for every level of one architecture.
type Table struct {
	// PerAccessPJ is indexed like arch.Spec.Levels (0 = registers,
	// last = DRAM).
	PerAccessPJ []float64
	MACPJ       float64
	VectorPJ    float64
}

// TableFor derives an energy table from an architecture specification.
func TableFor(spec *arch.Spec) *Table {
	t := &Table{
		PerAccessPJ: make([]float64, len(spec.Levels)),
		MACPJ:       MACEnergyPJ,
		VectorPJ:    VectorOpPJ,
	}
	for i, l := range spec.Levels {
		switch {
		case i == 0:
			t.PerAccessPJ[i] = RegisterAccessPJ
		case l.CapacityBytes == 0:
			t.PerAccessPJ[i] = DRAMAccessPJ
		default:
			t.PerAccessPJ[i] = SRAMAccessPJ(l.CapacityBytes)
		}
	}
	return t
}

// Breakdown is the energy split the Fig 13 experiment reports.
type Breakdown struct {
	PerLevelPJ []float64 // indexed like the spec's levels
	ComputePJ  float64
}

// TotalPJ sums the breakdown.
func (b Breakdown) TotalPJ() float64 {
	total := b.ComputePJ
	for _, e := range b.PerLevelPJ {
		total += e
	}
	return total
}

// Fraction reports one level's share of total energy.
func (b Breakdown) Fraction(level int) float64 {
	t := b.TotalPJ()
	if t == 0 {
		return 0
	}
	return b.PerLevelPJ[level] / t
}

// String renders the breakdown compactly.
func (b Breakdown) String() string {
	t := b.TotalPJ()
	if t == 0 {
		return "energy: 0"
	}
	s := fmt.Sprintf("energy %.3g pJ (compute %.1f%%", t, 100*b.ComputePJ/t)
	for i, e := range b.PerLevelPJ {
		s += fmt.Sprintf(", L%d %.1f%%", i, 100*e/t)
	}
	return s + ")"
}

// Estimate computes the energy breakdown from per-level word-access counts
// and op counts. accesses[i] is the total number of word accesses at level i
// (fill + read + update, as produced by the core data-movement analysis).
func (t *Table) Estimate(accesses []float64, macs, vectorOps float64) Breakdown {
	return t.EstimateInto(make([]float64, len(t.PerAccessPJ)), accesses, macs, vectorOps)
}

// EstimateInto is Estimate writing the per-level energies into a
// caller-owned buffer (len ≥ len(PerAccessPJ)), for allocation-free
// steady-state evaluation. The returned Breakdown aliases dst.
func (t *Table) EstimateInto(dst []float64, accesses []float64, macs, vectorOps float64) Breakdown {
	b := Breakdown{PerLevelPJ: dst[:len(t.PerAccessPJ)]}
	for i := range t.PerAccessPJ {
		if i < len(accesses) {
			b.PerLevelPJ[i] = accesses[i] * t.PerAccessPJ[i]
		} else {
			b.PerLevelPJ[i] = 0
		}
	}
	b.ComputePJ = macs*t.MACPJ + vectorOps*t.VectorPJ
	return b
}
