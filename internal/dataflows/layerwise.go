package dataflows

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// layerwise is the no-fusion baseline of Table 5: every operator is mapped
// to the whole accelerator on its own, so every intermediate tensor spills
// to DRAM (its least common ancestor is the DRAM-level root).
type layerwise struct {
	name string
	g    *workload.Graph
	spec *arch.Spec
	// coreDim is split spatially across cores, subDim across sub-cores
	// (Cloud), chunkDim temporally at the per-op top node.
	coreDim, subDim, chunkDim string
	// spatialOf picks each operator's leaf spatial dims.
	spatialOf func(op *workload.Operator) []string
	// aggregate maps leaf spatial dims onto the whole-chip array instead
	// of one sub-core mesh (the convolution channel mapping), with no
	// core/sub-core splits.
	aggregate bool
}

// LayerwiseAttention is the Layerwise baseline for self-attention.
func LayerwiseAttention(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &layerwise{
		name: "Layerwise", g: workload.Attention(s), spec: spec,
		coreDim: "h", subDim: "m", chunkDim: "m",
		spatialOf: attentionLeafSpatial,
	}
}

// LayerwiseConv is the Layerwise baseline for convolution chains: each
// convolution maps its channel parallelism onto the aggregate array, one
// operator at a time (so a single conv cannot fill the chip — the
// utilization gap the pipelined fusion dataflow closes).
func LayerwiseConv(s workload.ConvChainShape, spec *arch.Spec) Dataflow {
	return &layerwise{
		name: "Layerwise", g: workload.ConvChain(s), spec: spec,
		chunkDim: "h", spatialOf: convLeafSpatial, aggregate: true,
	}
}

func attentionLeafSpatial(op *workload.Operator) []string {
	switch op.Name {
	case "QK":
		return []string{"m", "l"}
	case "LV":
		return []string{"m", "n"}
	default:
		return []string{"l"}
	}
}

// convLeafSpatial maps the channel dimensions onto the PE array (output
// channels × input channels), the standard spatial mapping for convolution
// engines; height/width parallelism lives at the core/sub-core splits.
func convLeafSpatial(op *workload.Operator) []string {
	if op.HasDim("l") && !op.IsReduction("l") {
		return []string{"l", "c"}
	}
	return []string{"e", "l"}
}

func (d *layerwise) Name() string           { return d.name }
func (d *layerwise) Graph() *workload.Graph { return d.g }

// StructureStable: one subtree per operator in graph order, independent of
// the factor assignment.
func (d *layerwise) StructureStable() bool { return true }

func (d *layerwise) Factors() []FactorSpec {
	fs := []FactorSpec{
		{Key: "t", Total: d.g.DimSize(d.chunkDim), Doc: "temporal tiles of " + d.chunkDim + " per operator"},
	}
	if d.coreDim != "" {
		fs = append(fs, FactorSpec{Key: "sp_c", Total: d.g.DimSize(d.coreDim), Doc: "spatial split of " + d.coreDim + " across cores"})
	}
	if d.subDim != "" && d.spec.NumLevels() >= 4 {
		fs = append(fs, FactorSpec{Key: "sp_s", Total: d.g.DimSize(d.subDim), Doc: "spatial split of " + d.subDim + " across sub-cores"})
	}
	return fs
}

func (d *layerwise) DefaultFactors() map[string]int {
	f := map[string]int{}
	if d.coreDim != "" {
		f["sp_c"] = DivisorAtMost(d.g.DimSize(d.coreDim), d.spec.Levels[d.spec.DRAMLevel()].Fanout)
	}
	if d.subDim != "" && d.spec.NumLevels() >= 4 {
		f["sp_s"] = DivisorAtMost(d.g.DimSize(d.subDim), d.spec.Levels[2].Fanout)
	}
	total := d.g.DimSize(d.chunkDim)
	f["t"] = DivisorNear(total, max(1, total/64))
	return f
}

func (d *layerwise) Build(f map[string]int) (*core.Node, error) {
	r := &factorReader{f: f}
	spC := 1
	if d.coreDim != "" {
		spC = r.get("sp_c", d.g.DimSize(d.coreDim))
	}
	t := r.get("t", d.g.DimSize(d.chunkDim))
	spS := 1
	if d.subDim != "" && d.spec.NumLevels() >= 4 {
		spS = r.get("sp_s", d.g.DimSize(d.subDim))
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	var kids []*core.Node
	for _, op := range d.g.Ops {
		sub, err := d.opSubtree(op, spC, spS, t)
		if err != nil {
			return nil, err
		}
		kids = append(kids, sub)
	}
	root := core.Tile(d.name, d.spec.DRAMLevel(), core.Seq, nil, kids...)
	return root, nil
}

// opSubtree maps one operator onto the whole accelerator: an outer on-chip
// node carrying the spatial core split and the temporal chunking, then (on
// Cloud) an L1 node with the sub-core split, then the leaf.
func (d *layerwise) opSubtree(op *workload.Operator, spC, spS, t int) (*core.Node, error) {
	var oDims [4]string
	var oProd [4]int
	outer := &outerProds{dims: oDims[:0], prod: oProd[:0]}
	var topLoops, midLoops []core.Loop
	if d.coreDim != "" && op.HasDim(d.coreDim) && spC > 1 {
		if op.DimSize(d.coreDim)%spC != 0 {
			return nil, fmt.Errorf("layerwise %s: sp_c=%d does not divide %s", op.Name, spC, d.coreDim)
		}
		topLoops = append(topLoops, core.S(d.coreDim, spC))
		outer.mul(d.coreDim, spC)
	}
	if op.HasDim(d.chunkDim) && t > 1 {
		prev := outer.of(d.chunkDim)
		if prev == 0 {
			prev = 1
		}
		if op.DimSize(d.chunkDim)%(prev*t) != 0 {
			return nil, fmt.Errorf("layerwise %s: t=%d does not divide %s", op.Name, t, d.chunkDim)
		}
		topLoops = append(topLoops, core.T(d.chunkDim, t))
		outer.mul(d.chunkDim, t)
	}
	cloud := d.spec.NumLevels() >= 4
	if cloud && d.subDim != "" && op.HasDim(d.subDim) && spS > 1 {
		prev := outer.of(d.subDim)
		if prev == 0 {
			prev = 1
		}
		if op.DimSize(d.subDim)%(prev*spS) != 0 {
			return nil, fmt.Errorf("layerwise %s: sp_s=%d does not divide %s", op.Name, spS, d.subDim)
		}
		midLoops = append(midLoops, core.S(d.subDim, spS))
		outer.mul(d.subDim, spS)
	}
	var remBuf [8]int
	rem, err := remaining(remBuf[:0], op, outer)
	if err != nil {
		return nil, fmt.Errorf("layerwise %s: %w", op.Name, err)
	}
	var leaf *core.Node
	if d.aggregate {
		aggX, aggY := d.spec.AggregateMesh()
		leaf = core.Leaf(op.Name, op, leafLoopsCapped(op, d.spec, rem, d.spatialOf(op), aggX*aggY, aggX, aggY, nil)...)
	} else {
		leaf = core.Leaf(op.Name, op, leafLoops(op, d.spec, rem, d.spatialOf(op), 0, nil)...)
	}
	if cloud {
		l1 := core.Tile(op.Name+"@L1", 1, core.Seq, midLoops, leaf)
		return core.Tile(op.Name+"@L2", 2, core.Seq, topLoops, l1), nil
	}
	return core.Tile(op.Name+"@L1", 1, core.Seq, topLoops, leaf), nil
}
