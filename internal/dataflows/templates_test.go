package dataflows

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestGranularityLadderStaging checks the Table 7 mechanism across the FLAT
// ladder on Edge: coarser granularity stages strictly more data at L1.
func TestGranularityLadderStaging(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B") // small enough for MGran
	spec := arch.Edge()
	foot := func(df Dataflow) int64 {
		root, err := df.Build(df.DefaultFactors())
		if err != nil {
			t.Fatalf("%s: %v", df.Name(), err)
		}
		res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatalf("%s: %v", df.Name(), err)
		}
		return res.FootprintWords[1]
	}
	m := foot(FLATMGran(shape, spec))
	b := foot(FLATBGran(shape, spec))
	h := foot(FLATHGran(shape, spec))
	r := foot(FLATRGran(shape, spec))
	if !(m >= b && b >= h && h > r) {
		t.Errorf("granularity ladder not monotone: M=%d B=%d H=%d R=%d", m, b, h, r)
	}
}

// TestFusedConfinesSoftmaxChain: every fused attention dataflow keeps the
// score matrix and softmax intermediates off DRAM.
func TestFusedConfinesSoftmaxChain(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	for _, spec := range []*arch.Spec{arch.Edge(), arch.Cloud()} {
		for _, df := range []Dataflow{
			FLATHGran(shape, spec), FLATRGran(shape, spec), TileFlowAttention(shape, spec),
		} {
			root, err := df.Build(df.DefaultFactors())
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, df.Name(), err)
			}
			res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, df.Name(), err)
			}
			dram := spec.DRAMLevel()
			for _, tensor := range []string{"S", "Mx", "Sh", "E", "Sm", "L"} {
				if dm := res.TensorDM[tensor]; dm != nil && dm[dram].Total() != 0 {
					t.Errorf("%s/%s: %s leaked %.0f words to DRAM", spec.Name, df.Name(), tensor, dm[dram].Total())
				}
			}
		}
	}
}

// TestUnfusedLVSpillsL: Uni-pipe and Chimera keep LV out of the fusion, so
// the softmax output L must cross DRAM while S stays confined.
func TestUnfusedLVSpillsL(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	for _, df := range []Dataflow{UniPipe(shape, spec), Chimera(shape, spec)} {
		root, err := df.Build(df.DefaultFactors())
		if err != nil {
			t.Fatalf("%s: %v", df.Name(), err)
		}
		res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatalf("%s: %v", df.Name(), err)
		}
		if res.TensorDM["L"][2].Total() == 0 {
			t.Errorf("%s: L should spill to DRAM when LV is unfused", df.Name())
		}
		if res.TensorDM["S"][2].Total() != 0 {
			t.Errorf("%s: S should stay on chip", df.Name())
		}
	}
}

// TestConvActConfined: every conv fusion dataflow keeps the intermediate
// activation on chip; Layerwise spills it.
func TestConvActConfined(t *testing.T) {
	shape, _ := workload.ConvChainShapeByName("CC3")
	spec := arch.Cloud()
	check := func(df Dataflow, wantOnChip bool) {
		root, err := df.Build(df.DefaultFactors())
		if err != nil {
			t.Fatalf("%s: %v", df.Name(), err)
		}
		res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatalf("%s: %v", df.Name(), err)
		}
		dramAct := res.TensorDM["Act"][spec.DRAMLevel()].Total()
		if wantOnChip && dramAct != 0 {
			t.Errorf("%s: Act leaked %.0f words to DRAM", df.Name(), dramAct)
		}
		if !wantOnChip && dramAct == 0 {
			t.Errorf("%s: Act should spill to DRAM", df.Name())
		}
	}
	check(LayerwiseConv(shape, spec), false)
	check(FusedLayer(shape, spec), true)
	check(ISOS(shape, spec), true)
	check(TileFlowConv(shape, spec), true)
}

// TestFinerTilesShrinkStaging: finer h/w tiling of the fused conv shrinks
// the staged activation tile without adding DRAM traffic — adjacent tiles'
// halo overlap is a sliding-window hit in the slice-difference analysis,
// so the cost of fine tiling is buffer churn, not off-chip refetch.
func TestFinerTilesShrinkStaging(t *testing.T) {
	shape, _ := workload.ConvChainShapeByName("CC3")
	spec := arch.Edge()
	df := FusedLayer(shape, spec)
	eval := func(th, tw int) *core.Result {
		root, err := df.Build(map[string]int{"t_h": th, "t_w": tw})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	coarse := eval(2, 2)
	fine := eval(14, 14)
	if fine.FootprintWords[1] >= coarse.FootprintWords[1] {
		t.Errorf("finer tiles should stage less: %v vs %v", fine.FootprintWords[1], coarse.FootprintWords[1])
	}
	// The Act halo never reaches DRAM under either tiling.
	if fine.TensorDM["Act"][2].Total() != 0 || coarse.TensorDM["Act"][2].Total() != 0 {
		t.Error("Act leaked to DRAM")
	}
	// Im IS refetched with halos: Fused-Layer's Seq binding evicts it
	// between the two convolution tiles, so finer tiling costs more Im
	// DRAM reads — the classic Fused-Layer halo overhead.
	vol := float64(df.Graph().Tensors["Im"].Volume())
	cr := coarse.TensorDM["Im"][2].Read
	fr := fine.TensorDM["Im"][2].Read
	if cr < vol-0.5 || fr < vol-0.5 {
		t.Errorf("Im reads below compulsory volume: %v/%v vs %v", cr, fr, vol)
	}
	if fr <= cr {
		t.Errorf("finer tiles should refetch more Im halo: fine %v vs coarse %v", fr, cr)
	}
}

// TestPropertyFactorSpacesBuild: every (dataflow, divisor assignment) from
// the declared factor space either builds or fails with an error — and the
// built trees always evaluate.
func TestPropertyFactorSpacesBuild(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	flows := []Dataflow{
		LayerwiseAttention(shape, spec), UniPipe(shape, spec),
		FLATHGran(shape, spec), FLATRGran(shape, spec),
		Chimera(shape, spec), TileFlowAttention(shape, spec),
	}
	prop := func(pick [8]uint8, which uint8) bool {
		df := flows[int(which)%len(flows)]
		specs := df.Factors()
		f := map[string]int{}
		for i, fs := range specs {
			ch := fs.Choices()
			f[fs.Key] = ch[int(pick[i%len(pick)])%len(ch)]
		}
		root, err := df.Build(f)
		if err != nil {
			return true // combined factors may over-divide a dim
		}
		res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true, SkipPECheck: true})
		if err != nil {
			return true
		}
		return res.Cycles > 0 && res.EnergyPJ() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
