package dataflows

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// fusedConv is the shared template behind the convolution-chain fusion
// dataflows of Table 5: Fused-Layer (height and width tiled), ISOS (only
// width tiled) and the TileFlow conv dataflow (the two convolutions
// pipelined with the channel dimension tiled as well). The intermediate
// activation tensor is confined at the fused stage, so its halo reads stay
// on chip.
type fusedConv struct {
	name    string
	shape   workload.ConvChainShape
	spec    *arch.Spec
	g       *workload.Graph
	outer   []string // dims tiled at the outer level (subset of h, w, l)
	binding core.Binding
}

// FusedLayer fuses the two convolutions with the height and width
// dimensions tiled (Alwani et al., the Fused-Layer dataflow).
func FusedLayer(s workload.ConvChainShape, spec *arch.Spec) Dataflow {
	return &fusedConv{name: "Fused-Layer", shape: s, spec: spec, g: workload.ConvChain(s),
		outer: []string{"h", "w"}, binding: core.Seq}
}

// ISOS fuses the two convolutions with only the width dimension tiled
// (ISOSceles; designed for sparse CNNs, evaluated dense here as in the
// paper).
func ISOS(s workload.ConvChainShape, spec *arch.Spec) Dataflow {
	return &fusedConv{name: "ISOS", shape: s, spec: spec, g: workload.ConvChain(s),
		outer: []string{"w"}, binding: core.Seq}
}

// TileFlowConv is the dataflow TileFlow's mapper discovers for convolution
// chains (Sec 7.2): the two convolutions pipelined with the shared channel
// dimension tiled alongside height and width.
func TileFlowConv(s workload.ConvChainShape, spec *arch.Spec) Dataflow {
	return &fusedConv{name: "TileFlow", shape: s, spec: spec, g: workload.ConvChain(s),
		outer: []string{"h", "w", "l"}, binding: core.Pipe}
}

func (d *fusedConv) Name() string           { return d.name }
func (d *fusedConv) Graph() *workload.Graph { return d.g }

// StructureStable: the chain shape is fixed by the graph and architecture;
// factors fill loop extents only.
func (d *fusedConv) StructureStable() bool { return true }

func (d *fusedConv) hasOuter(dim string) bool {
	for _, o := range d.outer {
		if o == dim {
			return true
		}
	}
	return false
}

func (d *fusedConv) coreDim() string {
	for _, pref := range []string{"h", "w", "l"} {
		if d.hasOuter(pref) {
			return pref
		}
	}
	return ""
}

func (d *fusedConv) subDim() string {
	cd := d.coreDim()
	for _, pref := range []string{"w", "h", "l"} {
		if pref != cd && d.hasOuter(pref) {
			return pref
		}
	}
	return ""
}

func (d *fusedConv) Factors() []FactorSpec {
	var fs []FactorSpec
	for _, dim := range d.outer {
		fs = append(fs, FactorSpec{Key: "t_" + dim, Total: d.g.DimSize(dim),
			Doc: "temporal tiles of " + dim + " at the outer level"})
	}
	return fs
}

func (d *fusedConv) DefaultFactors() map[string]int {
	f := map[string]int{}
	for _, dim := range d.outer {
		total := d.g.DimSize(dim)
		f["t_"+dim] = DivisorNear(total, max(1, total/16))
	}
	return f
}

func (d *fusedConv) Build(f map[string]int) (*core.Node, error) {
	r := &factorReader{f: f}
	var opDims [8]string
	var opProd [8]int
	outerProd := &outerProds{dims: opDims[:0], prod: opProd[:0]}
	mul := outerProd.mul
	var granT []placed
	cloud := d.spec.NumLevels() >= 4
	// Convolution parallelism comes from the channel dimensions mapped
	// spatially at the leaves (spanning sub-cores up to the aggregate
	// array); height/width tiling provides on-chip staging only.
	// Granularity loops stay on chip: at the L2 mid node on Cloud, at the
	// L1 stage on Edge (see the attention template for the rationale).
	for _, dim := range d.outer {
		v := r.get("t_"+dim, d.g.DimSize(dim))
		if v > 1 {
			granT = append(granT, placed{dim, v})
		}
		mul(dim, v)
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	for di, dim := range outerProd.dims {
		if p := outerProd.prod[di]; d.g.DimSize(dim)%p != 0 {
			return nil, fmt.Errorf("dataflow %s: outer factors %d do not divide %s=%d", d.name, p, dim, d.g.DimSize(dim))
		}
	}

	aggX, aggY := d.spec.AggregateMesh()
	var kids []*core.Node
	var remBuf [8]int
	for _, op := range d.g.Ops {
		rem, err := remaining(remBuf[:0], op, outerProd)
		if err != nil {
			return nil, fmt.Errorf("dataflow %s, op %s: %w", d.name, op.Name, err)
		}
		budget := aggX * aggY
		if d.binding.Spatial() {
			// Concurrent stages partition the aggregate array; each
			// claims its channel extents, which by construction fit
			// side by side (the array edges bound each factor).
			budget = aggX * aggY / len(d.g.Ops)
		}
		leaf := core.Leaf(op.Name, op,
			leafLoopsCapped(op, d.spec, rem, convLeafSpatial(op), budget, aggX, aggY, nil)...)
		kids = append(kids, leaf)
	}
	var stageLoops []core.Loop
	if !cloud {
		for _, p := range granT {
			stageLoops = append(stageLoops, core.T(p.dim, p.ext))
		}
	}
	stage := core.Tile("stage", 1, d.binding, stageLoops, kids...)

	var body *core.Node = stage
	if cloud {
		var midLoops []core.Loop
		for _, p := range granT {
			midLoops = append(midLoops, core.T(p.dim, p.ext))
		}
		body = core.Tile("mid", 2, core.Seq, midLoops, stage)
	}
	return core.Tile(d.name, d.spec.DRAMLevel(), core.Seq, nil, body), nil
}
