package dataflows

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// attentionDataflows lists every Table 5 attention dataflow for a shape/spec.
func attentionDataflows(s workload.AttentionShape, spec *arch.Spec) []Dataflow {
	return []Dataflow{
		LayerwiseAttention(s, spec),
		UniPipe(s, spec),
		FLATMGran(s, spec),
		FLATBGran(s, spec),
		FLATHGran(s, spec),
		FLATRGran(s, spec),
		Chimera(s, spec),
		TileFlowAttention(s, spec),
	}
}

func convDataflows(s workload.ConvChainShape, spec *arch.Spec) []Dataflow {
	return []Dataflow{
		LayerwiseConv(s, spec),
		FusedLayer(s, spec),
		ISOS(s, spec),
		TileFlowConv(s, spec),
	}
}

// TestAllTemplatesBuildAndEvaluate builds every named dataflow with its
// default factors on both accelerators and checks the evaluation runs.
func TestAllTemplatesBuildAndEvaluate(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	cc, _ := workload.ConvChainShapeByName("CC3")
	for _, spec := range []*arch.Spec{arch.Edge(), arch.Cloud()} {
		var flows []Dataflow
		flows = append(flows, attentionDataflows(shape, spec)...)
		flows = append(flows, convDataflows(cc, spec)...)
		for _, df := range flows {
			t.Run(spec.Name+"/"+df.Name()+"/"+df.Graph().Name, func(t *testing.T) {
				root, err := df.Build(df.DefaultFactors())
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
				if err != nil {
					t.Fatalf("evaluate: %v", err)
				}
				if res.Cycles <= 0 {
					t.Errorf("cycles = %v", res.Cycles)
				}
				if res.DRAMTraffic() <= 0 {
					t.Errorf("DRAM traffic = %v", res.DRAMTraffic())
				}
			})
		}
	}
}

// TestFusionBeatsLayerwiseOnDRAM checks the paper's central qualitative
// result: fusion dataflows move far less DRAM data than Layerwise.
func TestFusionBeatsLayerwiseOnDRAM(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	spec := arch.Edge()
	eval := func(df Dataflow) float64 {
		root, err := df.Build(df.DefaultFactors())
		if err != nil {
			t.Fatalf("%s build: %v", df.Name(), err)
		}
		res, err := core.Evaluate(root, df.Graph(), spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatalf("%s evaluate: %v", df.Name(), err)
		}
		return res.DRAMTraffic()
	}
	layer := eval(LayerwiseAttention(shape, spec))
	for _, df := range []Dataflow{FLATHGran(shape, spec), FLATRGran(shape, spec), TileFlowAttention(shape, spec)} {
		if got := eval(df); got >= layer {
			t.Errorf("%s DRAM traffic %v not below Layerwise %v", df.Name(), got, layer)
		}
	}
}

// TestFactorValidation checks that non-divisor factors are rejected.
func TestFactorValidation(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	df := FLATRGran(shape, arch.Edge())
	f := df.DefaultFactors()
	f["t_m"] = 7 // 512 % 7 != 0
	if _, err := df.Build(f); err == nil {
		t.Error("want error for non-divisor factor, got nil")
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	if DivisorAtMost(12, 5) != 4 {
		t.Errorf("DivisorAtMost(12,5) = %d", DivisorAtMost(12, 5))
	}
	if DivisorNear(12, 5) != 6 {
		t.Errorf("DivisorNear(12,5) = %d", DivisorNear(12, 5))
	}
}
