// Package dataflows provides the named fusion dataflows of Table 5 as
// parameterized analysis-tree templates: Layerwise, Uni-pipe, the four FLAT
// granularities, Chimera and the TileFlow dataflow for self-attention, and
// Layerwise, Fused-Layer, ISOS and TileFlow for convolution chains.
//
// A template exposes a factor space (named tiling factors, each a divisor of
// a dimension) and builds a core.Node tree from a concrete factor
// assignment. The mapper searches the factor space; the experiments use
// mapper-tuned factors so the comparison between dataflows is fair, as
// Sec 7.3 requires ("we utilize TileFlow's mapper to determine the tiling
// factors for all the different dataflows").
package dataflows

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// FactorSpec describes one tiling factor of a template's search space: the
// factor must be a divisor of Total.
type FactorSpec struct {
	Key   string
	Total int
	// Doc explains what the factor tiles.
	Doc string
}

// Choices enumerates the legal values of the factor (the divisors of Total).
func (f FactorSpec) Choices() []int { return Divisors(f.Total) }

// Dataflow is a buildable dataflow template.
type Dataflow interface {
	// Name is the Table 5 name.
	Name() string
	// Graph is the workload the dataflow schedules.
	Graph() *workload.Graph
	// Factors is the tiling-factor search space.
	Factors() []FactorSpec
	// DefaultFactors is a reasonable untuned assignment.
	DefaultFactors() map[string]int
	// Build constructs the analysis tree for a factor assignment.
	Build(f map[string]int) (*core.Node, error)
}

// StructureStable is an optional Dataflow capability: a template declares
// that every factor assignment Build accepts yields a tree with the same
// structure — shape, levels, bindings and operators; only loop nests
// differ. Mappers exploit it to core.Compile the template's tree once and
// re-bind tilings through core.Program.WithTiling instead of recompiling
// per candidate. Factor-1 loops may come and go freely (builders drop
// them); what must not vary is the node tree itself.
type StructureStable interface {
	// StructureStable reports whether Build's tree structure is
	// independent of the factor assignment.
	StructureStable() bool
}

// IsStructureStable reports whether the dataflow declares a
// factor-independent tree structure.
func IsStructureStable(df Dataflow) bool {
	s, ok := df.(StructureStable)
	return ok && s.StructureStable()
}

// Divisors lists the positive divisors of n in increasing order.
func Divisors(n int) []int {
	if n <= 0 {
		return nil
	}
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	sort.Ints(out)
	return out
}

// DivisorAtMost returns the largest divisor of n that is ≤ cap (at least 1).
func DivisorAtMost(n, cap int) int {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d != 0 {
			continue
		}
		if d <= cap && d > best {
			best = d
		}
		if q := n / d; q <= cap && q > best {
			best = q
		}
	}
	return best
}

// DivisorNear returns the divisor of n closest to target (ties prefer the
// larger divisor).
func DivisorNear(n, target int) int {
	best, bestDist := 1, target
	for _, d := range Divisors(n) {
		dist := d - target
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist || (dist == bestDist && d > best) {
			best, bestDist = d, dist
		}
	}
	return best
}

// factorReader reads factors with divisibility validation.
type factorReader struct {
	f    map[string]int
	errs []error
}

func (r *factorReader) get(key string, total int) int {
	v, ok := r.f[key]
	if !ok || v <= 0 {
		v = 1
	}
	if total%v != 0 {
		r.errs = append(r.errs, fmt.Errorf("factor %s=%d does not divide %d", key, v, total))
		return 1
	}
	return v
}

func (r *factorReader) err() error {
	if len(r.errs) == 0 {
		return nil
	}
	return r.errs[0]
}

// outerProds accumulates the per-dim products of outer tiling factors. A
// template touches a handful of dims per build, so a linear assoc list
// beats a map on the mapper's per-candidate path; of() returns 0 for a dim
// never multiplied, matching the map-lookup miss it replaced.
type outerProds struct {
	dims []string
	prod []int
}

func (o *outerProds) mul(dim string, v int) {
	for i, d := range o.dims {
		if d == dim {
			o.prod[i] *= v
			return
		}
	}
	o.dims = append(o.dims, dim)
	o.prod = append(o.prod, v)
}

func (o *outerProds) of(dim string) int {
	for i, d := range o.dims {
		if d == dim {
			return o.prod[i]
		}
	}
	return 0
}

// dimIndex is the position of dim in op.Dims, or -1 when the operator does
// not iterate it (a spatial preference that does not apply).
func dimIndex(op *workload.Operator, dim string) int {
	for i, d := range op.Dims {
		if d.Name == dim {
			return i
		}
	}
	return -1
}

// leafLoops picks the loops for a leaf with the sub-core mesh as the
// spatial bound: it splits up to two dimensions of the remaining extents
// across the available lanes (the PE mesh for MAC operators, the vector
// unit width for the rest), capped by peBudget so that pipelined stages
// share the array, returning the loops in canonical order (temporal loops
// first with reductions innermost, then spatial). rem holds the remaining
// extents positionally parallel to op.Dims. peBudget <= 0 means the whole
// mesh. red, when non-nil, is op's precomputed is-reduction mask parallel
// to op.Dims (templates that build the same leaves per candidate cache it);
// nil recomputes it.
func leafLoops(op *workload.Operator, spec *arch.Spec, rem []int, spatialDims []string, peBudget int, red []bool) []core.Loop {
	return leafLoopsCapped(op, spec, rem, spatialDims, peBudget, spec.MeshX, spec.MeshY, red)
}

// leafLoopsCapped is leafLoops with explicit per-dimension spatial caps,
// for mappings whose spatial extent spans sub-cores (convolution channel
// mappings bounded by the aggregate array edges).
func leafLoopsCapped(op *workload.Operator, spec *arch.Spec, rem []int, spatialDims []string, peBudget, capX, capY int, red []bool) []core.Loop {
	meshX, meshY := capX, capY
	if meshX <= 0 {
		meshX = spec.MeshX
	}
	if meshY <= 0 {
		meshY = spec.MeshY
	}
	if peBudget <= 0 {
		peBudget = meshX * meshY
	}
	lanes := spec.VectorLanesPerSubcore
	// Up to two spatial splits, tracked by op.Dims position. A preference
	// dim the operator does not iterate gets extent 0, so its split
	// degenerates to 1 and never emits a loop.
	si0, si1 := -1, -1
	sv0, sv1 := 0, 0
	remOf := func(dim string) (int, int) {
		i := dimIndex(op, dim)
		if i < 0 {
			return i, 0
		}
		return i, rem[i]
	}
	if op.Kind.Vector() {
		if len(spatialDims) > 0 {
			i, r := remOf(spatialDims[0])
			si0, sv0 = i, DivisorAtMost(r, lanes)
		}
	} else {
		used := 1
		if len(spatialDims) > 0 {
			i, r := remOf(spatialDims[0])
			si0, sv0 = i, DivisorAtMost(r, min(meshX, peBudget))
			used = sv0
		}
		if len(spatialDims) > 1 && used > 0 {
			i, r := remOf(spatialDims[1])
			si1, sv1 = i, DivisorAtMost(r, min(meshY, max(1, peBudget/used)))
		}
	}
	if si1 >= 0 && si1 == si0 {
		// A repeated spatial preference keeps the later split, matching the
		// map-overwrite semantics this replaced.
		si0 = -1
	}
	spatOf := func(i int) int {
		switch i {
		case si0:
			return sv0
		case si1:
			return sv1
		}
		return 0
	}
	// Canonical order: temporal loops over every dim (outer), spatial
	// loops innermost. Reduction dims go innermost among the temporals so
	// outputs accumulate in place. Two passes give the same stable
	// partition a stable sort on is-reduction would, without the sort.
	var redBuf [16]bool
	if red == nil {
		if len(op.Dims) <= len(redBuf) {
			red = redBuf[:len(op.Dims)]
		} else {
			red = make([]bool, len(op.Dims))
		}
		for i, d := range op.Dims {
			red[i] = op.IsReduction(d.Name)
		}
	}
	loops := make([]core.Loop, 0, len(op.Dims)+2)
	for pass := 0; pass < 2; pass++ {
		wantRed := pass == 1
		for i, d := range op.Dims {
			if red[i] != wantRed {
				continue
			}
			e := rem[i]
			if e <= 0 {
				e = 1
			}
			t := e / max(1, spatOf(i))
			if t > 1 {
				loops = append(loops, core.T(d.Name, t))
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		wantRed := pass == 1
		for i, d := range op.Dims {
			if red[i] != wantRed {
				continue
			}
			if s := spatOf(i); s > 1 {
				loops = append(loops, core.S(d.Name, s))
			}
		}
	}
	return loops
}

// macLeafBudget divides the PE mesh among the MAC operators of a fused
// stage when the binding runs them concurrently (Para/Pipe); under Seq/Shar
// each stage gets the whole array in turns. Concurrent stages receive
// partitions proportional to their work so a balanced pipeline wastes no
// lanes; the result is each MAC leaf's individual cap.
func macLeafBudget(spec *arch.Spec, binding core.Binding, ops []*workload.Operator) int {
	mesh := spec.MeshX * spec.MeshY
	if !binding.Spatial() {
		return mesh
	}
	macs := 0
	for _, op := range ops {
		if !op.Kind.Vector() {
			macs++
		}
	}
	if macs <= 1 {
		return mesh
	}
	return max(1, mesh/macs)
}

// macLeafBudgetFor sizes one operator's partition of the mesh under a
// concurrent binding proportionally to its share of the MAC work, rounded
// to a power of two so divisor-based spatial factors still fit.
func macLeafBudgetFor(spec *arch.Spec, binding core.Binding, ops []*workload.Operator, op *workload.Operator) int {
	mesh := spec.MeshX * spec.MeshY
	if !binding.Spatial() || op.Kind.Vector() {
		return mesh
	}
	var total, mine int64
	macs := 0
	for _, o := range ops {
		if o.Kind.Vector() {
			continue
		}
		macs++
		total += o.OpCount()
		if o == op {
			mine = o.OpCount()
		}
	}
	if macs <= 1 || total == 0 {
		return mesh
	}
	share := float64(mine) / float64(total)
	budget := 1
	for budget*2 <= int(share*float64(mesh)) {
		budget *= 2
	}
	return max(1, budget)
}

// remaining computes the leaf extents of each dim of op after the outer
// factors have been applied, positionally parallel to op.Dims. outer maps
// dim name to the product of all outer tiling factors over that dim. The
// result is appended into dst (pass a stack buffer's [:0] to avoid the
// allocation on the mapper's hot path).
func remaining(dst []int, op *workload.Operator, outer *outerProds) ([]int, error) {
	dst = dst[:0]
	for _, d := range op.Dims {
		o := outer.of(d.Name)
		if o == 0 {
			o = 1
		}
		if d.Size%o != 0 {
			return nil, fmt.Errorf("dim %s: outer factors %d do not divide %d", d.Name, o, d.Size)
		}
		dst = append(dst, d.Size/o)
	}
	return dst, nil
}
