// Package dataflows provides the named fusion dataflows of Table 5 as
// parameterized analysis-tree templates: Layerwise, Uni-pipe, the four FLAT
// granularities, Chimera and the TileFlow dataflow for self-attention, and
// Layerwise, Fused-Layer, ISOS and TileFlow for convolution chains.
//
// A template exposes a factor space (named tiling factors, each a divisor of
// a dimension) and builds a core.Node tree from a concrete factor
// assignment. The mapper searches the factor space; the experiments use
// mapper-tuned factors so the comparison between dataflows is fair, as
// Sec 7.3 requires ("we utilize TileFlow's mapper to determine the tiling
// factors for all the different dataflows").
package dataflows

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// FactorSpec describes one tiling factor of a template's search space: the
// factor must be a divisor of Total.
type FactorSpec struct {
	Key   string
	Total int
	// Doc explains what the factor tiles.
	Doc string
}

// Choices enumerates the legal values of the factor (the divisors of Total).
func (f FactorSpec) Choices() []int { return Divisors(f.Total) }

// Dataflow is a buildable dataflow template.
type Dataflow interface {
	// Name is the Table 5 name.
	Name() string
	// Graph is the workload the dataflow schedules.
	Graph() *workload.Graph
	// Factors is the tiling-factor search space.
	Factors() []FactorSpec
	// DefaultFactors is a reasonable untuned assignment.
	DefaultFactors() map[string]int
	// Build constructs the analysis tree for a factor assignment.
	Build(f map[string]int) (*core.Node, error)
}

// StructureStable is an optional Dataflow capability: a template declares
// that every factor assignment Build accepts yields a tree with the same
// structure — shape, levels, bindings and operators; only loop nests
// differ. Mappers exploit it to core.Compile the template's tree once and
// re-bind tilings through core.Program.WithTiling instead of recompiling
// per candidate. Factor-1 loops may come and go freely (builders drop
// them); what must not vary is the node tree itself.
type StructureStable interface {
	// StructureStable reports whether Build's tree structure is
	// independent of the factor assignment.
	StructureStable() bool
}

// IsStructureStable reports whether the dataflow declares a
// factor-independent tree structure.
func IsStructureStable(df Dataflow) bool {
	s, ok := df.(StructureStable)
	return ok && s.StructureStable()
}

// Divisors lists the positive divisors of n in increasing order.
func Divisors(n int) []int {
	if n <= 0 {
		return nil
	}
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	sort.Ints(out)
	return out
}

// DivisorAtMost returns the largest divisor of n that is ≤ cap (at least 1).
func DivisorAtMost(n, cap int) int {
	best := 1
	for _, d := range Divisors(n) {
		if d <= cap && d > best {
			best = d
		}
	}
	return best
}

// DivisorNear returns the divisor of n closest to target (ties prefer the
// larger divisor).
func DivisorNear(n, target int) int {
	best, bestDist := 1, target
	for _, d := range Divisors(n) {
		dist := d - target
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist || (dist == bestDist && d > best) {
			best, bestDist = d, dist
		}
	}
	return best
}

// factorReader reads factors with divisibility validation.
type factorReader struct {
	f    map[string]int
	errs []error
}

func (r *factorReader) get(key string, total int) int {
	v, ok := r.f[key]
	if !ok || v <= 0 {
		v = 1
	}
	if total%v != 0 {
		r.errs = append(r.errs, fmt.Errorf("factor %s=%d does not divide %d", key, v, total))
		return 1
	}
	return v
}

func (r *factorReader) err() error {
	if len(r.errs) == 0 {
		return nil
	}
	return r.errs[0]
}

// leafLoops picks the loops for a leaf with the sub-core mesh as the
// spatial bound: it splits up to two dimensions of the remaining extents
// across the available lanes (the PE mesh for MAC operators, the vector
// unit width for the rest), capped by peBudget so that pipelined stages
// share the array, returning the loops in canonical order (temporal loops
// first with reductions innermost, then spatial). peBudget <= 0 means the
// whole mesh.
func leafLoops(op *workload.Operator, spec *arch.Spec, rem map[string]int, spatialDims []string, peBudget int) []core.Loop {
	return leafLoopsCapped(op, spec, rem, spatialDims, peBudget, spec.MeshX, spec.MeshY)
}

// leafLoopsCapped is leafLoops with explicit per-dimension spatial caps,
// for mappings whose spatial extent spans sub-cores (convolution channel
// mappings bounded by the aggregate array edges).
func leafLoopsCapped(op *workload.Operator, spec *arch.Spec, rem map[string]int, spatialDims []string, peBudget, capX, capY int) []core.Loop {
	var loops []core.Loop
	meshX, meshY := capX, capY
	if meshX <= 0 {
		meshX = spec.MeshX
	}
	if meshY <= 0 {
		meshY = spec.MeshY
	}
	if peBudget <= 0 {
		peBudget = meshX * meshY
	}
	lanes := spec.VectorLanesPerSubcore
	spat := map[string]int{}
	if op.Kind.Vector() {
		if len(spatialDims) > 0 {
			d := spatialDims[0]
			spat[d] = DivisorAtMost(rem[d], lanes)
		}
	} else {
		used := 1
		if len(spatialDims) > 0 {
			d := spatialDims[0]
			spat[d] = DivisorAtMost(rem[d], min(meshX, peBudget))
			used = spat[d]
		}
		if len(spatialDims) > 1 && used > 0 {
			d := spatialDims[1]
			spat[d] = DivisorAtMost(rem[d], min(meshY, max(1, peBudget/used)))
		}
	}
	// Canonical order: temporal loops over every dim (outer), spatial
	// loops innermost. Reduction dims go innermost among the temporals so
	// outputs accumulate in place.
	dims := append([]workload.Dim(nil), op.Dims...)
	sort.SliceStable(dims, func(i, j int) bool {
		ri, rj := op.IsReduction(dims[i].Name), op.IsReduction(dims[j].Name)
		return !ri && rj
	})
	for _, d := range dims {
		e := rem[d.Name]
		if e <= 0 {
			e = 1
		}
		t := e / max(1, spat[d.Name])
		if t > 1 {
			loops = append(loops, core.T(d.Name, t))
		}
	}
	for _, d := range dims {
		if s := spat[d.Name]; s > 1 {
			loops = append(loops, core.S(d.Name, s))
		}
	}
	return loops
}

// macLeafBudget divides the PE mesh among the MAC operators of a fused
// stage when the binding runs them concurrently (Para/Pipe); under Seq/Shar
// each stage gets the whole array in turns. Concurrent stages receive
// partitions proportional to their work so a balanced pipeline wastes no
// lanes; the result is each MAC leaf's individual cap.
func macLeafBudget(spec *arch.Spec, binding core.Binding, ops []*workload.Operator) int {
	mesh := spec.MeshX * spec.MeshY
	if !binding.Spatial() {
		return mesh
	}
	macs := 0
	for _, op := range ops {
		if !op.Kind.Vector() {
			macs++
		}
	}
	if macs <= 1 {
		return mesh
	}
	return max(1, mesh/macs)
}

// macLeafBudgetFor sizes one operator's partition of the mesh under a
// concurrent binding proportionally to its share of the MAC work, rounded
// to a power of two so divisor-based spatial factors still fit.
func macLeafBudgetFor(spec *arch.Spec, binding core.Binding, ops []*workload.Operator, op *workload.Operator) int {
	mesh := spec.MeshX * spec.MeshY
	if !binding.Spatial() || op.Kind.Vector() {
		return mesh
	}
	var total, mine int64
	macs := 0
	for _, o := range ops {
		if o.Kind.Vector() {
			continue
		}
		macs++
		total += o.OpCount()
		if o == op {
			mine = o.OpCount()
		}
	}
	if macs <= 1 || total == 0 {
		return mesh
	}
	share := float64(mine) / float64(total)
	budget := 1
	for budget*2 <= int(share*float64(mesh)) {
		budget *= 2
	}
	return max(1, budget)
}

// remaining computes the leaf extents of each dim of op after the outer
// factors have been applied. outer maps dim name to the product of all
// outer tiling factors over that dim.
func remaining(op *workload.Operator, outer map[string]int) (map[string]int, error) {
	rem := map[string]int{}
	for _, d := range op.Dims {
		o := outer[d.Name]
		if o == 0 {
			o = 1
		}
		if d.Size%o != 0 {
			return nil, fmt.Errorf("dim %s: outer factors %d do not divide %d", d.Name, o, d.Size)
		}
		rem[d.Name] = d.Size / o
	}
	return rem, nil
}
