package dataflows

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// fusedAttention is the shared template behind Uni-pipe, the four FLAT
// granularities, Chimera and the TileFlow dataflow: self-attention with the
// softmax expanded to five operators, fused at the innermost on-chip level,
// with a configurable set of outer-tiled dimensions (the FLAT granularity
// axis), a configurable inter-tile binding among the fused stages, and an
// optional exclusion of L×V from the fusion.
type fusedAttention struct {
	name  string
	shape workload.AttentionShape
	spec  *arch.Spec
	g     *workload.Graph
	outer []string // dims tiled at outer levels, in loop order
	// stageDims are iterated temporally at the fused stage node itself:
	// the stage stages one chunk of them at a time without any outer
	// (DRAM-level) tiling or parallelization. Uni-pipe processes heads
	// this way.
	stageDims []string
	binding   core.Binding
	fuseLV    bool

	// prepOnce/prep lazily cache every factor-independent derivation Build
	// needs (dim sizes, core/sub splits, factor keys, the fused operator
	// list and its mesh budget), so the mapper's per-candidate Build does
	// no graph scans or string concatenation. One Dataflow is shared across
	// the GA's parallel fitness workers, hence the Once.
	prepOnce sync.Once
	prep     *attnPrep
}

// attnPrep is the factor-independent precomputation behind Build.
type attnPrep struct {
	cd, sd         string
	cdSize, sdSize int
	cloud          bool
	size           map[string]int // graph dim name -> size
	tKeys          []string       // "t_"+outer[i], parallel to outer
	outerSizes     []int          // dim size of outer[i]
	hasM           bool           // hasOuter("m")
	mSize          int
	stageSizes     []int // dim size of stageDims[i]
	fusedOps       []*workload.Operator
	// leafRed[i] is fusedOps[i]'s is-reduction mask parallel to its Dims,
	// fed to leafLoops so per-candidate builds skip the recomputation.
	leafRed [][]bool
	budget  int
}

// prepare computes (once) and returns the Build-path cache.
func (d *fusedAttention) prepare() *attnPrep {
	d.prepOnce.Do(func() {
		p := &attnPrep{
			cd:    d.coreDim(),
			sd:    d.subDim(),
			cloud: d.cloud(),
			size:  map[string]int{},
			hasM:  d.hasOuter("m"),
		}
		for _, dim := range d.g.AllDims() {
			// DimSize, not dim.Size: the graph-wide maximum is what every
			// d.dimSize call this cache replaces returned.
			p.size[dim.Name] = d.g.DimSize(dim.Name)
		}
		p.cdSize, p.sdSize = p.size[p.cd], p.size[p.sd]
		p.mSize = p.size["m"]
		for _, dim := range d.outer {
			p.tKeys = append(p.tKeys, "t_"+dim)
			p.outerSizes = append(p.outerSizes, p.size[dim])
		}
		for _, dim := range d.stageDims {
			p.stageSizes = append(p.stageSizes, p.size[dim])
		}
		fused := []string{"QK", "RowMax", "Sub", "Exp", "RowSum", "Div"}
		if d.fuseLV {
			fused = append(fused, "LV")
		}
		for _, name := range fused {
			op := d.g.Op(name)
			red := make([]bool, len(op.Dims))
			for i, dim := range op.Dims {
				red[i] = op.IsReduction(dim.Name)
			}
			p.fusedOps = append(p.fusedOps, op)
			p.leafRed = append(p.leafRed, red)
		}
		p.budget = macLeafBudget(d.spec, d.binding, p.fusedOps)
		d.prep = p
	})
	return d.prep
}

// Attention dataflow constructors (Table 5). The granularity ladder follows
// FLAT: MGran tiles nothing (the whole intermediate is staged), BGran tiles
// batch, HGran tiles batch and heads, RGran tiles batch, heads and rows.
// Chimera tiles every dimension but keeps L×V out of the fusion; the
// TileFlow dataflow pipelines all three stages with all loops tiled
// (Sec 7.2: "pipeline all the three computation stages ... with all the
// loops tiled").

// UniPipe pipelines Q×K and softmax without tiling heads or rows: batch and
// heads advance temporally at the fused stage, so there is no outer-level
// parallelism (the low-utilization dataflow of Fig 11).
func UniPipe(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "Uni-pipe", shape: s, spec: spec, g: workload.Attention(s),
		outer: nil, stageDims: []string{"b", "h"}, binding: core.Pipe, fuseLV: false}
}

// FLATMGran fuses all three stages with no outer tiling.
func FLATMGran(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "FLAT-MGran", shape: s, spec: spec, g: workload.Attention(s),
		outer: nil, binding: core.Seq, fuseLV: true}
}

// FLATBGran fuses all three stages and tiles the batch dimension.
func FLATBGran(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "FLAT-BGran", shape: s, spec: spec, g: workload.Attention(s),
		outer: []string{"b"}, binding: core.Seq, fuseLV: true}
}

// FLATHGran fuses all three stages and tiles batch and heads (Fig 2a).
func FLATHGran(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "FLAT-HGran", shape: s, spec: spec, g: workload.Attention(s),
		outer: []string{"b", "h"}, binding: core.Seq, fuseLV: true}
}

// FLATRGran fuses all three stages and tiles batch, heads and rows.
func FLATRGran(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "FLAT-RGran", shape: s, spec: spec, g: workload.Attention(s),
		outer: []string{"b", "h", "m"}, binding: core.Seq, fuseLV: true}
}

// Chimera fuses Q×K with softmax and tiles every dimension.
func Chimera(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "Chimera", shape: s, spec: spec, g: workload.Attention(s),
		outer: []string{"b", "h", "m", "l"}, binding: core.Seq, fuseLV: false}
}

// TileFlowAttention is the dataflow the TileFlow mapper discovers (Sec 7.2):
// all three stages pipelined, all loops tiled.
func TileFlowAttention(s workload.AttentionShape, spec *arch.Spec) Dataflow {
	return &fusedAttention{name: "TileFlow", shape: s, spec: spec, g: workload.Attention(s),
		outer: []string{"b", "h", "m", "n", "l"}, binding: core.Pipe, fuseLV: true}
}

// CustomAttention builds a fused attention dataflow with an explicit
// granularity (outer-tiled dims), inter-tile binding and fusion scope, for
// ablation studies over the 3D design space's binding axis.
func CustomAttention(name string, s workload.AttentionShape, spec *arch.Spec, outer []string, binding core.Binding, fuseLV bool) Dataflow {
	return &fusedAttention{name: name, shape: s, spec: spec, g: workload.Attention(s),
		outer: outer, binding: binding, fuseLV: fuseLV}
}

// placed is a (dimension, extent) pair destined for a node's loop list.
type placed struct {
	dim string
	ext int
}

func (d *fusedAttention) Name() string           { return d.name }
func (d *fusedAttention) Graph() *workload.Graph { return d.g }

// StructureStable: the tree shape depends only on the template's fusion
// config and the architecture (cloud vs edge), never on the factors —
// factors fill loop extents only.
func (d *fusedAttention) StructureStable() bool { return true }

func (d *fusedAttention) hasOuter(dim string) bool {
	for _, o := range d.outer {
		if o == dim {
			return true
		}
	}
	return false
}

// coreDim picks the dimension split spatially across cores; subDim the one
// split across sub-cores (Cloud only).
func (d *fusedAttention) coreDim() string {
	for _, pref := range []string{"h", "b", "m"} {
		if d.hasOuter(pref) {
			return pref
		}
	}
	return ""
}

func (d *fusedAttention) subDim() string {
	cd := d.coreDim()
	for _, pref := range []string{"m", "h", "l", "b"} {
		if pref != cd && d.hasOuter(pref) && d.dimSize(pref) > 1 {
			return pref
		}
	}
	// No second dimension to split: reuse the core dimension across
	// sub-cores too (FLAT-HGran spreads heads over both levels).
	return cd
}

func (d *fusedAttention) dimSize(dim string) int { return d.g.DimSize(dim) }

func (d *fusedAttention) cloud() bool { return d.spec.NumLevels() >= 4 }

// Factors implements Dataflow.
func (d *fusedAttention) Factors() []FactorSpec {
	var fs []FactorSpec
	for _, dim := range d.outer {
		fs = append(fs, FactorSpec{Key: "t_" + dim, Total: d.dimSize(dim),
			Doc: "temporal tiles of " + dim + " at the outer level"})
	}
	if cd := d.coreDim(); cd != "" {
		fs = append(fs, FactorSpec{Key: "sp_c", Total: d.dimSize(cd),
			Doc: "spatial split of " + cd + " across cores"})
	}
	if d.cloud() {
		if sd := d.subDim(); sd != "" {
			fs = append(fs, FactorSpec{Key: "sp_s", Total: d.dimSize(sd),
				Doc: "spatial split of " + sd + " across sub-cores"})
		}
		if d.hasOuter("m") {
			fs = append(fs, FactorSpec{Key: "u_m", Total: d.dimSize("m"),
				Doc: "temporal tiles of m at the L2 node"})
		}
	}
	return fs
}

// DefaultFactors implements Dataflow with a plausible untuned assignment:
// heads across cores, rows across sub-cores, modest row chunks.
func (d *fusedAttention) DefaultFactors() map[string]int {
	f := map[string]int{}
	cores := d.spec.Levels[d.spec.DRAMLevel()].Fanout
	if cd := d.coreDim(); cd != "" {
		f["sp_c"] = DivisorAtMost(d.dimSize(cd), cores)
	}
	if d.cloud() {
		if sd := d.subDim(); sd != "" {
			rem := d.dimSize(sd)
			if sd == d.coreDim() {
				rem /= max(1, f["sp_c"])
			}
			f["sp_s"] = DivisorAtMost(rem, d.spec.Levels[2].Fanout)
		}
	}
	// Batch and heads are fully consumed at the outer level: that is what
	// "tiling batch/multi_heads" means in the FLAT granularity ladder.
	for _, dim := range []string{"b", "h"} {
		if !d.hasOuter(dim) {
			continue
		}
		spent := 1
		if d.coreDim() == dim {
			spent *= max(1, f["sp_c"])
		}
		if d.subDim() == dim {
			spent *= max(1, f["sp_s"])
		}
		f["t_"+dim] = max(1, d.dimSize(dim)/spent)
	}
	if d.hasOuter("m") {
		// Stage blocks of ~64 rows.
		total := d.dimSize("m")
		spent := 1
		if d.subDim() == "m" {
			spent = max(1, f["sp_s"])
		} else if d.coreDim() == "m" {
			spent = max(1, f["sp_c"])
		}
		rem := total / spent
		f["t_m"] = DivisorNear(rem, max(1, rem/64))
	}
	if d.hasOuter("l") {
		f["t_l"] = DivisorNear(d.dimSize("l"), max(1, d.dimSize("l")/256))
	}
	return f
}

// Build implements Dataflow, assembling the tree:
//
//	root@DRAM {Sp(coreDim)}                       — spatial split only
//	  [Cloud: mid@L2 {T(granularity loops)}]      — L2 staging granularity
//	    stage@L1 {Sp(subDim), T(granularity)}     — L1 staging granularity
//	      the fused QK/softmax[/LV] leaves        — (binding)
//	  [unfused L×V subtree as a Seq sibling]
//
// The granularity loops (the FLAT b/h/m ladder plus Chimera/TileFlow's l/n
// tiling) live at the on-chip staging nodes, never at the DRAM root: tiling
// a reduction at the root would bounce partial sums off DRAM, and tiling
// rows there would defeat the staging the dataflow exists to provide. On
// Edge they all sit at the L1 stage; on Cloud they sit at the L2 mid node
// with u_m refining the L1 staging.
func (d *fusedAttention) Build(f map[string]int) (*core.Node, error) {
	pp := d.prepare()
	r := &factorReader{f: f}
	spec := d.spec

	// Per-dim products of all outer factors.
	var opDims [8]string
	var opProd [8]int
	outerProd := &outerProds{dims: opDims[:0], prod: opProd[:0]}
	mul := outerProd.mul
	var rootSp, granT, stageSp, stageT []placed

	cd, sd := pp.cd, pp.sd
	if cd != "" {
		v := r.get("sp_c", pp.cdSize)
		if v > 1 {
			rootSp = append(rootSp, placed{cd, v})
		}
		mul(cd, v)
	}
	if pp.cloud && sd != "" {
		v := r.get("sp_s", pp.sdSize)
		if v > 1 {
			stageSp = append(stageSp, placed{sd, v})
		}
		mul(sd, v)
	}
	for i, dim := range d.outer {
		v := r.get(pp.tKeys[i], pp.outerSizes[i])
		if v > 1 {
			granT = append(granT, placed{dim, v})
		}
		mul(dim, v)
	}
	if pp.cloud && pp.hasM {
		v := r.get("u_m", pp.mSize)
		if v > 1 {
			stageT = append(stageT, placed{"m", v})
		}
		mul("m", v)
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	// Divisibility of the combined products.
	for di, dim := range outerProd.dims {
		if p := outerProd.prod[di]; pp.size[dim]%p != 0 {
			return nil, fmt.Errorf("dataflow %s: outer factors %d do not divide %s=%d", d.name, p, dim, pp.size[dim])
		}
	}

	// Stage-consumed dims (Uni-pipe's untiled heads) advance temporally
	// at the innermost staging node, chunk by chunk, in full.
	for i, dim := range d.stageDims {
		sz := pp.stageSizes[i]
		o := outerProd.of(dim)
		if o == 0 {
			o = 1
		}
		if sz%o != 0 {
			return nil, fmt.Errorf("dataflow %s: stage dim %s: outer %d does not divide %d", d.name, dim, o, sz)
		}
		if e := sz / o; e > 1 {
			stageT = append(stageT, placed{dim, e})
			mul(dim, e)
		}
	}
	// On Edge there is no L2 node: the granularity loops fold into the
	// stage node itself.
	if !pp.cloud {
		stageT = append(granT, stageT...)
		granT = nil
	}

	// Leaves for the fused stage.
	budget := pp.budget
	stageKids := make([]*core.Node, 0, len(pp.fusedOps))
	for oi, op := range pp.fusedOps {
		leaf, err := d.buildLeaf(op, outerProd, budget, pp.leafRed[oi])
		if err != nil {
			return nil, err
		}
		stageKids = append(stageKids, leaf)
	}
	var stageLoops []core.Loop
	for _, p := range stageSp {
		stageLoops = append(stageLoops, core.S(p.dim, p.ext))
	}
	for _, p := range stageT {
		stageLoops = append(stageLoops, core.T(p.dim, p.ext))
	}
	stage := core.Tile("stage", 1, d.binding, stageLoops, stageKids...)

	// Subtree under the root: optionally wrapped in the Cloud L2 node
	// carrying the coarse granularity loops.
	var body *core.Node = stage
	if pp.cloud {
		var loops []core.Loop
		for _, p := range granT {
			loops = append(loops, core.T(p.dim, p.ext))
		}
		body = core.Tile("mid", 2, core.Seq, loops, stage)
	}

	children := []*core.Node{body}
	rootBinding := core.Seq
	if !d.fuseLV {
		lv, err := d.buildUnfusedLV(outerProd, granT, stageSp, stageT)
		if err != nil {
			return nil, err
		}
		children = append(children, lv)
	}

	var rootLoops []core.Loop
	for _, p := range rootSp {
		rootLoops = append(rootLoops, core.S(p.dim, p.ext))
	}
	root := core.Tile("root", spec.DRAMLevel(), rootBinding, rootLoops, children...)
	root.Name = d.name
	return root, nil
}

// Canonical spatial preferences per attention stage: Q×K maps (m,l) to the
// array, L×V maps (m,n), and the softmax operators map l onto the vector
// lanes. Package-level so the per-candidate Build path allocates none.
var (
	spatialQK      = []string{"m", "l"}
	spatialLV      = []string{"m", "n"}
	spatialSoftmax = []string{"l"}
)

// buildLeaf constructs one operator's leaf with the canonical spatial dims
// per stage.
func (d *fusedAttention) buildLeaf(op *workload.Operator, outer *outerProds, budget int, red []bool) (*core.Node, error) {
	var remBuf [8]int
	rem, err := remaining(remBuf[:0], op, outer)
	if err != nil {
		return nil, fmt.Errorf("dataflow %s, op %s: %w", d.name, op.Name, err)
	}
	var spatial []string
	switch op.Name {
	case "QK":
		spatial = spatialQK
	case "LV":
		spatial = spatialLV
	default:
		spatial = spatialSoftmax
	}
	return core.Leaf(op.Name, op, leafLoops(op, d.spec, rem, spatial, budget, red)...), nil
}

// buildUnfusedLV gives L×V its own subtree when it is outside the fusion
// (Uni-pipe, Chimera): the softmax output L then travels through DRAM. The
// subtree mirrors the Cloud mid node's loops over L×V's own dimensions so
// both root children tile their shared dims identically.
func (d *fusedAttention) buildUnfusedLV(outer *outerProds, granT, stageSp, stageT []placed) (*core.Node, error) {
	op := d.g.Op("LV")
	// L×V shares the outer factors for its own dims (b, h, m, l); n is
	// untiled outside. The subtree mirrors the fused side's staging loops
	// over those dims so both root children tile their shared dims
	// identically.
	lvOuter := &outerProds{}
	for _, dim := range op.DimNames() {
		if v := outer.of(dim); v > 1 {
			lvOuter.mul(dim, v)
		}
	}
	var lvStageLoops []core.Loop
	for _, p := range stageSp {
		if op.HasDim(p.dim) && p.ext > 1 {
			lvStageLoops = append(lvStageLoops, core.S(p.dim, p.ext))
		}
	}
	for _, p := range stageT {
		if op.HasDim(p.dim) && p.ext > 1 {
			lvStageLoops = append(lvStageLoops, core.T(p.dim, p.ext))
		}
	}
	leaf, err := d.buildLeaf(op, lvOuter, 0, nil)
	if err != nil {
		return nil, err
	}
	node := core.Tile("lv-stage", 1, core.Seq, lvStageLoops, leaf)
	if d.cloud() {
		var loops []core.Loop
		for _, p := range granT {
			if op.HasDim(p.dim) && p.ext > 1 {
				loops = append(loops, core.T(p.dim, p.ext))
			}
		}
		return core.Tile("lv-mid", 2, core.Seq, loops, node), nil
	}
	return node, nil
}
