package yamlfe

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/workload"
)

// Config is a fully loaded Timeloop-style configuration: the three parts
// of a TileFlow design point in this repository's native types.
type Config struct {
	Spec  *arch.Spec
	Graph *workload.Graph
	Root  *core.Node
}

// Load parses and loads a config, collecting every problem as a coded,
// positioned diagnostic. The Config is nil exactly when the returned list
// contains at least one error; warning-only lists come with a usable
// Config.
func Load(src string) (*Config, diag.List) {
	var r diag.Reporter
	root := parseYAML(src, &r)
	var cfg *Config
	if !r.HasErrors() {
		ld := &loader{r: &r}
		cfg = ld.load(root)
	}
	diags := r.List()
	if diags.HasErrors() {
		return nil, diags
	}
	return cfg, diags
}

// LoadStrict is Load returning the diagnostics as an error on failure,
// for callers that do not distinguish warnings.
func LoadStrict(src string) (*Config, error) {
	cfg, diags := Load(src)
	if cfg == nil {
		if len(diags) == 0 {
			return nil, fmt.Errorf("yamlfe: empty config")
		}
		return nil, diags
	}
	return cfg, nil
}

type loader struct {
	r *diag.Reporter
}

// ---- generic node accessors -------------------------------------------

func (ld *loader) mapping(n *node, what string) *node {
	if n == nil {
		return nil
	}
	if n.kind != kindMapping {
		ld.r.Reportf(CodeKind, n.span, "", "%s must be a mapping, got a %s", what, n.kind)
		return nil
	}
	return n
}

func (ld *loader) sequence(n *node, what string) *node {
	if n == nil {
		return nil
	}
	if n.kind != kindSequence {
		ld.r.Reportf(CodeKind, n.span, "", "%s must be a sequence, got a %s", what, n.kind)
		return nil
	}
	return n
}

func (ld *loader) scalar(n *node, what string) (string, bool) {
	if n == nil {
		return "", false
	}
	if n.kind != kindScalar {
		ld.r.Reportf(CodeKind, n.span, "", "%s must be a scalar, got a %s", what, n.kind)
		return "", false
	}
	return n.text, true
}

func (ld *loader) str(n *node, what string) (string, bool) {
	s, ok := ld.scalar(n, what)
	if !ok {
		return "", false
	}
	if s == "" {
		ld.r.Reportf(CodeScalar, n.span, "", "%s must not be empty", what)
		return "", false
	}
	return s, true
}

func (ld *loader) integer(n *node, what string) (int, bool) {
	s, ok := ld.scalar(n, what)
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		ld.r.Reportf(CodeScalar, n.span, "", "%s: %q is not an integer", what, s)
		return 0, false
	}
	return v, true
}

func (ld *loader) float(n *node, what string) (float64, bool) {
	s, ok := ld.scalar(n, what)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		ld.r.Reportf(CodeScalar, n.span, "", "%s: %q is not a number", what, s)
		return 0, false
	}
	return v, true
}

func (ld *loader) boolean(n *node, what string) (bool, bool) {
	s, ok := ld.scalar(n, what)
	if !ok {
		return false, false
	}
	switch strings.ToLower(s) {
	case "true", "yes", "on":
		return true, true
	case "false", "no", "off":
		return false, true
	}
	ld.r.Reportf(CodeScalar, n.span, "", "%s: %q is not a boolean", what, s)
	return false, false
}

// isIdent reports whether s is a safe bare name: letters, digits,
// underscore, dot and dash, not starting with a digit or dash.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '.' || c == '-'):
		default:
			return false
		}
	}
	return true
}

func (ld *loader) ident(n *node, what string) (string, bool) {
	s, ok := ld.str(n, what)
	if !ok {
		return "", false
	}
	if !isIdent(s) {
		ld.r.Reportf(CodeScalar, n.span, "", "%s: %q is not a valid name", what, s)
		return "", false
	}
	return s, true
}

// checkFields warns about mapping keys outside the allowed set.
func (ld *loader) checkFields(m *node, what string, allowed ...string) {
	for i, k := range m.keys {
		known := false
		for _, a := range allowed {
			if k == a {
				known = true
				break
			}
		}
		if !known {
			ld.r.Reportf(CodeUnknownField, m.keySpans[i], "", "%s: unknown field %q ignored", what, k)
		}
	}
}

// nameList reads a list of names given either as a sequence of scalars or
// as one space/comma-separated scalar.
func (ld *loader) nameList(n *node, what string) ([]string, []diag.Span) {
	var names []string
	var spans []diag.Span
	if n == nil {
		return nil, nil
	}
	switch n.kind {
	case kindSequence:
		for _, item := range n.items {
			if s, ok := ld.ident(item, what+" entry"); ok {
				names = append(names, s)
				spans = append(spans, item.span)
			}
		}
	case kindScalar:
		for _, f := range strings.FieldsFunc(n.text, func(r rune) bool { return r == ' ' || r == ',' }) {
			if !isIdent(f) {
				ld.r.Reportf(CodeScalar, n.span, "", "%s: %q is not a valid name", what, f)
				continue
			}
			names = append(names, f)
			spans = append(spans, n.span)
		}
	default:
		ld.r.Reportf(CodeKind, n.span, "", "%s must be a sequence or a scalar", what)
	}
	return names, spans
}

// ---- top level ---------------------------------------------------------

// notModeledSections are top-level Timeloop/TileFlow sections the loader
// accepts for compatibility but the model ignores.
var notModeledSections = []string{"check", "tileflow-mapper", "mapper", "macro", "output", "verbose", "version"}

func (ld *loader) load(root *node) *Config {
	if root == nil {
		ld.r.Reportf(CodeMissing, diag.Span{}, "", "empty config: architecture, problem and mapping sections are required")
		return nil
	}
	m := ld.mapping(root, "config")
	if m == nil {
		return nil
	}
	allowed := append([]string{"architecture", "problem", "mapping"}, notModeledSections...)
	ld.checkFields(m, "config", allowed...)
	for _, sec := range notModeledSections {
		if f := m.field(sec); f != nil {
			ld.r.Reportf(CodeNotModeled, m.keySpan(sec), "", "section %q is accepted but not modeled", sec)
		}
	}
	var spec *arch.Spec
	var g *workload.Graph
	var tree *core.Node
	if n := m.field("architecture"); n != nil {
		spec = ld.loadArch(n)
	} else {
		ld.r.Reportf(CodeMissing, m.span, "", "config: missing %q section", "architecture")
	}
	if n := m.field("problem"); n != nil {
		g = ld.loadProblem(n, m.keySpan("problem"))
	} else {
		ld.r.Reportf(CodeMissing, m.span, "", "config: missing %q section", "problem")
	}
	if n := m.field("mapping"); n != nil {
		if spec != nil && g != nil {
			tree = ld.loadMapping(n, g, spec)
		}
	} else {
		ld.r.Reportf(CodeMissing, m.span, "", "config: missing %q section", "mapping")
	}
	if spec == nil || g == nil || tree == nil {
		return nil
	}
	return &Config{Spec: spec, Graph: g, Root: tree}
}

// ---- architecture ------------------------------------------------------

// levelRec is one storage component discovered in the architecture walk,
// outermost first, with the chip-wide instance count implied by the
// container multiplicities on its path.
type levelRec struct {
	name   string
	span   diag.Span
	cap    int64
	bwGBs  float64 // aggregate GB/s; <0 when unset
	readBW float64 // per-instance words/cycle; <0 when unset
	inst   int
}

func (ld *loader) loadArch(n *node) *arch.Spec {
	m := ld.mapping(n, "architecture")
	if m == nil {
		return nil
	}
	ld.checkFields(m, "architecture", "version", "name", "attributes", "subtree")
	spec := &arch.Spec{Name: "custom", FreqGHz: 1, WordBytes: 2, MACsPerPE: 1, VectorLanesPerSubcore: 32}
	if f := m.field("name"); f != nil {
		if s, ok := ld.ident(f, "architecture name"); ok {
			spec.Name = s
		}
	}
	meshSet := false
	if attrs := m.field("attributes"); attrs != nil {
		meshSet = ld.archAttrs(attrs, spec)
	}
	sub := m.field("subtree")
	if sub == nil {
		ld.r.Reportf(CodeMissing, m.span, "", "architecture: missing %q", "subtree")
		return nil
	}
	seq := ld.sequence(sub, "architecture subtree")
	if seq == nil {
		return nil
	}
	if len(seq.items) != 1 {
		ld.r.Reportf(CodeArch, seq.span, "", "architecture subtree must contain exactly one system node, got %d", len(seq.items))
		return nil
	}
	var recs []levelRec
	ld.walkArchNode(seq.items[0], 1, &recs)
	if ld.r.HasErrors() {
		return nil
	}
	// recs are outermost-first; arch.Spec wants innermost-first.
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	if len(recs) < 2 {
		ld.r.Reportf(CodeArch, m.keySpan("subtree"), "", "architecture: need at least two storage levels, found %d", len(recs))
		return nil
	}
	if out := recs[len(recs)-1]; out.inst != 1 {
		ld.r.Reportf(CodeArch, out.span, "", "outermost level %q must have exactly one instance, got %d", out.name, out.inst)
		return nil
	}
	for i, rec := range recs {
		fan := 1
		if i > 0 {
			below := recs[i-1].inst
			if below%rec.inst != 0 {
				ld.r.Reportf(CodeArch, rec.span, "",
					"level %q: %d instances of %q below do not divide evenly across %d instances",
					rec.name, below, recs[i-1].name, rec.inst)
				return nil
			}
			fan = below / rec.inst
		}
		bw := 0.0
		switch {
		case rec.bwGBs >= 0:
			bw = rec.bwGBs
		case rec.readBW >= 0:
			// Timeloop read_bandwidth is words/cycle per instance.
			bw = rec.readBW * float64(rec.inst) * float64(spec.WordBytes) * spec.FreqGHz
		}
		spec.Levels = append(spec.Levels, arch.Level{
			Name: rec.name, CapacityBytes: rec.cap, BandwidthGBs: bw, Fanout: fan,
		})
	}
	if !meshSet {
		// Derive a near-square PE mesh from the fanout above the registers.
		f := spec.Levels[1].Fanout
		mx := 1
		for d := 1; d*d <= f; d++ {
			if f%d == 0 {
				mx = d
			}
		}
		spec.MeshX, spec.MeshY = mx, f/mx
	}
	if err := spec.Validate(); err != nil {
		ld.r.Reportf(CodeArch, m.span, "", "architecture: %v", err)
		return nil
	}
	return spec
}

// archAttrs applies the global architecture attributes; it reports whether
// an explicit PE mesh was given.
func (ld *loader) archAttrs(n *node, spec *arch.Spec) bool {
	m := ld.mapping(n, "architecture attributes")
	if m == nil {
		return false
	}
	ld.checkFields(m, "architecture attributes",
		"freq_ghz", "word_bytes", "word_bits", "macs_per_pe", "vector_lanes", "mesh", "direct_access")
	meshSet := false
	if f := m.field("freq_ghz"); f != nil {
		if v, ok := ld.float(f, "freq_ghz"); ok {
			spec.FreqGHz = v
		}
	}
	if f := m.field("word_bytes"); f != nil {
		if v, ok := ld.integer(f, "word_bytes"); ok {
			spec.WordBytes = v
		}
	} else if f := m.field("word_bits"); f != nil {
		if v, ok := ld.integer(f, "word_bits"); ok {
			if v%8 != 0 {
				ld.r.Reportf(CodeScalar, f.span, "", "word_bits: %d is not a multiple of 8", v)
			} else {
				spec.WordBytes = v / 8
			}
		}
	}
	if f := m.field("macs_per_pe"); f != nil {
		if v, ok := ld.integer(f, "macs_per_pe"); ok {
			spec.MACsPerPE = v
		}
	}
	if f := m.field("vector_lanes"); f != nil {
		if v, ok := ld.integer(f, "vector_lanes"); ok {
			spec.VectorLanesPerSubcore = v
		}
	}
	if f := m.field("mesh"); f != nil {
		if seq := ld.sequence(f, "mesh"); seq != nil {
			if len(seq.items) != 2 {
				ld.r.Reportf(CodeScalar, f.span, "", "mesh must be [x, y]")
			} else {
				x, okX := ld.integer(seq.items[0], "mesh x")
				y, okY := ld.integer(seq.items[1], "mesh y")
				if okX && okY {
					spec.MeshX, spec.MeshY = x, y
					meshSet = true
				}
			}
		}
	}
	if f := m.field("direct_access"); f != nil {
		if seq := ld.sequence(f, "direct_access"); seq != nil {
			for _, pair := range seq.items {
				ps := ld.sequence(pair, "direct_access entry")
				if ps == nil {
					continue
				}
				if len(ps.items) != 2 {
					ld.r.Reportf(CodeScalar, pair.span, "", "direct_access entry must be [inner, outer]")
					continue
				}
				in, okI := ld.integer(ps.items[0], "direct_access inner")
				out, okO := ld.integer(ps.items[1], "direct_access outer")
				if okI && okO {
					spec.DirectAccess = append(spec.DirectAccess, [2]int{in, out})
				}
			}
		}
	}
	return meshSet
}

// walkArchNode descends one container of the Timeloop architecture tree,
// collecting storage components outermost-first.
func (ld *loader) walkArchNode(n *node, mult int, recs *[]levelRec) {
	m := ld.mapping(n, "architecture subtree entry")
	if m == nil {
		return
	}
	ld.checkFields(m, "architecture subtree entry", "name", "attributes", "local", "subtree")
	total := mult
	if f := m.field("name"); f != nil {
		if s, ok := ld.str(f, "subtree entry name"); ok {
			_, count, err := parseMultiplicity(s)
			if err != nil {
				ld.r.Reportf(CodeScalar, f.span, "", "subtree entry name: %v", err)
			} else {
				total = mult * count
			}
		}
	} else {
		ld.r.Reportf(CodeMissing, m.span, "", "architecture subtree entry: missing %q", "name")
	}
	if f := m.field("local"); f != nil {
		if seq := ld.sequence(f, "local"); seq != nil {
			for _, comp := range seq.items {
				ld.archComponent(comp, total, recs)
			}
		}
	}
	if f := m.field("subtree"); f != nil {
		if seq := ld.sequence(f, "subtree"); seq != nil {
			if len(seq.items) > 1 {
				ld.r.Reportf(CodeArch, seq.items[1].span, "",
					"non-linear hierarchy: a container may have at most one subtree child")
			}
			if len(seq.items) > 0 {
				ld.walkArchNode(seq.items[0], total, recs)
			}
		}
	}
}

// archComponent loads one `local` component: a storage level or an
// ignored compute unit.
func (ld *loader) archComponent(n *node, inst int, recs *[]levelRec) {
	m := ld.mapping(n, "local component")
	if m == nil {
		return
	}
	ld.checkFields(m, "local component", "name", "class", "attributes")
	name := ""
	span := m.span
	if f := m.field("name"); f != nil {
		if s, ok := ld.ident(f, "component name"); ok {
			name, span = s, f.span
		}
	}
	if name == "" {
		ld.r.Reportf(CodeMissing, m.span, "", "local component: missing %q", "name")
		return
	}
	class := ""
	if f := m.field("class"); f != nil {
		class, _ = ld.scalar(f, "component class")
	}
	lc := strings.ToLower(class)
	if strings.Contains(lc, "compute") || strings.Contains(lc, "mac") {
		return // compute units carry no storage
	}
	rec := levelRec{name: name, span: span, bwGBs: -1, readBW: -1, inst: inst}
	isDRAM := strings.Contains(lc, "dram")
	attrs := m.field("attributes")
	if attrs != nil {
		am := ld.mapping(attrs, "component attributes")
		if am == nil {
			return
		}
		ld.checkFields(am, "component attributes",
			"capacity", "depth", "block-size", "block_size", "word-bits", "word_bits",
			"width", "bandwidth_gbs", "read_bandwidth", "write_bandwidth")
		if f := am.field("capacity"); f != nil {
			if s, ok := ld.scalar(f, "capacity"); ok {
				c, err := parseCapacity(s)
				if err != nil {
					ld.r.Reportf(CodeScalar, f.span, "", "capacity: %v", err)
				} else {
					rec.cap = c
				}
			}
		} else if f := am.field("depth"); f != nil {
			if depth, ok := ld.integer(f, "depth"); ok {
				block := ld.intEither(am, "block-size", "block_size", 1)
				bits := ld.intEither(am, "word-bits", "word_bits", 16)
				rec.cap = int64(depth) * int64(block) * int64(bits) / 8
			}
		}
		if f := am.field("bandwidth_gbs"); f != nil {
			if v, ok := ld.float(f, "bandwidth_gbs"); ok {
				rec.bwGBs = v
			}
		} else if f := am.field("read_bandwidth"); f != nil {
			if v, ok := ld.float(f, "read_bandwidth"); ok {
				rec.readBW = v
			}
		}
	}
	if isDRAM {
		rec.cap = 0
	}
	*recs = append(*recs, rec)
}

// intEither reads an integer attribute under either spelling, falling
// back to def when absent or malformed.
func (ld *loader) intEither(m *node, key, alt string, def int) int {
	f := m.field(key)
	if f == nil {
		f = m.field(alt)
	}
	if f == nil {
		return def
	}
	if v, ok := ld.integer(f, key); ok {
		return v
	}
	return def
}

// parseMultiplicity splits "PE[0..15]" into ("PE", 16); a plain name has
// multiplicity 1.
func parseMultiplicity(s string) (string, int, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return s, 1, nil
	}
	if !strings.HasSuffix(s, "]") {
		return "", 0, fmt.Errorf("bad multiplicity in %q (want name[a..b])", s)
	}
	lo, hi, ok := strings.Cut(s[open+1:len(s)-1], "..")
	if !ok {
		return "", 0, fmt.Errorf("bad multiplicity in %q (want name[a..b])", s)
	}
	a, errA := strconv.Atoi(lo)
	b, errB := strconv.Atoi(hi)
	if errA != nil || errB != nil || a < 0 || b < a {
		return "", 0, fmt.Errorf("bad multiplicity range in %q", s)
	}
	return s[:open], b - a + 1, nil
}

// parseCapacity reads "384KB", "4MB", "2GB", a plain byte count, or
// "inf"/0 for unbounded, mirroring arch.ParseSpec.
func parseCapacity(src string) (int64, error) {
	low := strings.ToLower(src)
	if low == "inf" || low == "0" {
		return 0, nil
	}
	mult := int64(1)
	num := low
	switch {
	case strings.HasSuffix(low, "gb"):
		mult, num = 1<<30, strings.TrimSuffix(low, "gb")
	case strings.HasSuffix(low, "mb"):
		mult, num = 1<<20, strings.TrimSuffix(low, "mb")
	case strings.HasSuffix(low, "kb"):
		mult, num = 1<<10, strings.TrimSuffix(low, "kb")
	case strings.HasSuffix(low, "b"):
		num = strings.TrimSuffix(low, "b")
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad capacity %q", src)
	}
	return v * mult, nil
}
