package yamlfe

import (
	"strconv"
	"strings"

	"repro/internal/diag"
	"repro/internal/workload"
)

// loadProblem assembles the multi-op problem section into a workload
// graph: global dimensions and sizes, per-op data-spaces with
// product-of-sum-of-products projections, and ins/out tensor bindings.
func (ld *loader) loadProblem(n *node, keySpan diag.Span) *workload.Graph {
	m := ld.mapping(n, "problem")
	if m == nil {
		return nil
	}
	ld.checkFields(m, "problem",
		"version", "name", "elem_bytes", "io", "dimensions", "instance", "densities", "ops")
	name := "graph"
	if f := m.field("name"); f != nil {
		if s, ok := ld.ident(f, "problem name"); ok {
			name = s
		}
	}
	elem := workload.WordBytes
	if f := m.field("elem_bytes"); f != nil {
		if v, ok := ld.integer(f, "elem_bytes"); ok && v > 0 {
			elem = v
		}
	}
	var globalDims []string
	if f := m.field("dimensions"); f != nil {
		globalDims, _ = ld.nameList(f, "problem dimensions")
	}
	globalSizes := ld.sizeMap(m.field("instance"), "problem instance")
	opsN := m.field("ops")
	if opsN == nil {
		ld.r.Reportf(CodeMissing, m.span, "", "problem: missing %q", "ops")
		return nil
	}
	seq := ld.sequence(opsN, "problem ops")
	if seq == nil || len(seq.items) == 0 {
		if seq != nil {
			ld.r.Reportf(CodeProblem, seq.span, "", "problem: ops must list at least one operator")
		}
		return nil
	}
	var ops []*workload.Operator
	seenOps := map[string]bool{}
	for _, item := range seq.items {
		op := ld.loadOp(item, globalDims, globalSizes)
		if op == nil {
			continue
		}
		if seenOps[op.Name] {
			ld.r.Reportf(CodeProblem, item.span, op.Name, "duplicate operator %q", op.Name)
			continue
		}
		seenOps[op.Name] = true
		ops = append(ops, op)
	}
	if ld.r.HasErrors() {
		return nil
	}
	g, err := workload.NewGraph(name, elem, ops...)
	if err != nil {
		ld.r.Reportf(CodeProblem, keySpan, "", "problem: %v", err)
		return nil
	}
	if f := m.field("densities"); f != nil {
		if dm := ld.mapping(f, "densities"); dm != nil {
			for i, t := range dm.keys {
				v, ok := ld.float(dm.vals[i], "density of "+t)
				if !ok {
					continue
				}
				if err := g.SetDensity(t, v); err != nil {
					ld.r.Reportf(CodeUnknownRef, dm.keySpans[i], "", "densities: %v", err)
				}
			}
		}
	}
	if f := m.field("io"); f != nil {
		ld.checkIO(f, g)
	}
	if ld.r.HasErrors() {
		return nil
	}
	return g
}

// sizeMap reads a {dim: size} mapping.
func (ld *loader) sizeMap(n *node, what string) map[string]int {
	out := map[string]int{}
	if n == nil {
		return out
	}
	m := ld.mapping(n, what)
	if m == nil {
		return out
	}
	for i, k := range m.keys {
		if v, ok := ld.integer(m.vals[i], what+" size of "+k); ok {
			if v < 1 {
				ld.r.Reportf(CodeScalar, m.vals[i].span, "", "%s: size of %q must be positive", what, k)
				continue
			}
			out[k] = v
		}
	}
	return out
}

// checkIO validates the io section's tensor names against the graph.
func (ld *loader) checkIO(n *node, g *workload.Graph) {
	m := ld.mapping(n, "io")
	if m == nil {
		return
	}
	ld.checkFields(m, "io", "ins", "outs", "out")
	check := func(f *node, what string) {
		names, spans := ld.nameList(f, what)
		for i, t := range names {
			if _, ok := g.Tensors[t]; !ok {
				ld.r.Reportf(CodeUnknownRef, spans[i], "", "io: unknown tensor %q", t)
			}
		}
	}
	if f := m.field("ins"); f != nil {
		check(f, "io ins")
	}
	if f := m.field("outs"); f != nil {
		check(f, "io outs")
	} else if f := m.field("out"); f != nil {
		check(f, "io out")
	}
}

// dataSpace is one parsed data-space entry of an op.
type dataSpace struct {
	name      string
	span      diag.Span
	index     []workload.Index
	readWrite bool
}

// loadOp assembles one problem op into a workload.Operator.
func (ld *loader) loadOp(n *node, globalDims []string, globalSizes map[string]int) *workload.Operator {
	m := ld.mapping(n, "problem op")
	if m == nil {
		return nil
	}
	ld.checkFields(m, "problem op",
		"name", "kind", "dimensions", "instance", "data-spaces", "data_spaces", "ins", "out", "outs")
	name := ""
	if f := m.field("name"); f != nil {
		name, _ = ld.ident(f, "op name")
	} else {
		ld.r.Reportf(CodeMissing, m.span, "", "problem op: missing %q", "name")
	}
	if name == "" {
		return nil
	}
	kind := workload.KindMAC
	if f := m.field("kind"); f != nil {
		if s, ok := ld.str(f, "op kind"); ok {
			k, known := parseOpKind(s)
			if !known {
				ld.r.Reportf(CodeScalar, f.span, "", "op %s: unknown kind %q (want mac, exp, max, sum, sub, div or copy)", name, s)
				return nil
			}
			kind = k
		}
	}
	sizes := map[string]int{}
	for k, v := range globalSizes {
		sizes[k] = v
	}
	for k, v := range ld.sizeMap(m.field("instance"), "op "+name+" instance") {
		sizes[k] = v
	}
	var declared []string
	declaredSet := map[string]bool{}
	if f := m.field("dimensions"); f != nil {
		names, spans := ld.nameList(f, "op "+name+" dimensions")
		for i, d := range names {
			if declaredSet[d] {
				ld.r.Reportf(CodeProblem, spans[i], name, "op %s: dimension %q listed twice", name, d)
				continue
			}
			declaredSet[d] = true
			declared = append(declared, d)
		}
	}
	dsN := m.field("data-spaces")
	if dsN == nil {
		dsN = m.field("data_spaces")
	}
	if dsN == nil {
		ld.r.Reportf(CodeMissing, m.span, name, "op %s: missing %q", name, "data-spaces")
		return nil
	}
	seq := ld.sequence(dsN, "op "+name+" data-spaces")
	if seq == nil {
		return nil
	}
	outNames, _ := ld.nameList(fieldEither(m, "out", "outs"), "op "+name+" out")
	insNames, insSpans := ld.nameList(m.field("ins"), "op "+name+" ins")
	var spaces []dataSpace
	var usedDims []string
	usedSet := map[string]bool{}
	seenTensor := map[string]bool{}
	for _, item := range seq.items {
		dsm := ld.mapping(item, "data-space")
		if dsm == nil {
			continue
		}
		ld.checkFields(dsm, "data-space", "name", "projection", "read-write", "read_write")
		ds := dataSpace{span: item.span}
		if f := dsm.field("name"); f != nil {
			ds.name, _ = ld.ident(f, "data-space name")
			ds.span = f.span
		}
		if ds.name == "" {
			ld.r.Reportf(CodeMissing, dsm.span, name, "op %s: data-space missing %q", name, "name")
			continue
		}
		if seenTensor[ds.name] {
			ld.r.Reportf(CodeProblem, ds.span, name, "op %s: tensor %q has two data-spaces", name, ds.name)
			continue
		}
		seenTensor[ds.name] = true
		proj := dsm.field("projection")
		if proj == nil {
			ld.r.Reportf(CodeMissing, dsm.span, name, "op %s: data-space %q missing %q", name, ds.name, "projection")
			continue
		}
		ds.index = ld.parseProjection(proj, name, ds.name, declaredSet, &usedDims, usedSet)
		if f := fieldEither(dsm, "read-write", "read_write"); f != nil {
			ds.readWrite, _ = ld.boolean(f, "read-write")
		}
		for _, o := range outNames {
			if o == ds.name {
				ds.readWrite = true
			}
		}
		spaces = append(spaces, ds)
	}
	var write *dataSpace
	var reads []workload.Access
	for i := range spaces {
		ds := &spaces[i]
		if ds.readWrite {
			if write != nil {
				ld.r.Reportf(CodeProblem, ds.span, name, "op %s: both %q and %q marked as outputs", name, write.name, ds.name)
				return nil
			}
			write = ds
		} else {
			reads = append(reads, workload.Access{Tensor: ds.name, Index: ds.index})
		}
	}
	if write == nil {
		ld.r.Reportf(CodeProblem, seq.span, name, "op %s: no output data-space (mark one read-write or list it under out)", name)
		return nil
	}
	for i, in := range insNames {
		found := false
		for _, r := range reads {
			if r.Tensor == in {
				found = true
				break
			}
		}
		if !found {
			ld.r.Reportf(CodeUnknownRef, insSpans[i], name, "op %s: ins lists %q which has no read data-space", name, in)
		}
	}
	dims := declared
	if len(dims) == 0 {
		dims = usedDims
	}
	var opDims []workload.Dim
	for _, d := range dims {
		size, ok := sizes[d]
		if !ok {
			ld.r.Reportf(CodeProblem, m.span, name, "op %s: no instance size for dimension %q", name, d)
			return nil
		}
		opDims = append(opDims, workload.Dim{Name: d, Size: size})
	}
	if len(opDims) == 0 {
		ld.r.Reportf(CodeProblem, m.span, name, "op %s: no iteration dimensions", name)
		return nil
	}
	return &workload.Operator{
		Name:  name,
		Kind:  kind,
		Dims:  opDims,
		Reads: reads,
		Write: workload.Access{Tensor: write.name, Index: write.index},
	}
}

func fieldEither(m *node, key, alt string) *node {
	if f := m.field(key); f != nil {
		return f
	}
	return m.field(alt)
}

// parseProjection reads a Timeloop product-of-sum-of-products projection:
// one sequence per tensor dimension, each a sum of terms. A term is a
// dimension name (coefficient 1), [dim], [dim, coef], or a bare integer
// offset.
func (ld *loader) parseProjection(n *node, opName, tensor string, declared map[string]bool, usedDims *[]string, usedSet map[string]bool) []workload.Index {
	seq := ld.sequence(n, "projection of "+tensor)
	if seq == nil {
		return nil
	}
	useDim := func(d string, span diag.Span) bool {
		if len(declared) > 0 && !declared[d] {
			ld.r.Reportf(CodeUnknownRef, span, opName, "op %s: projection of %q uses undeclared dimension %q", opName, tensor, d)
			return false
		}
		if !usedSet[d] {
			usedSet[d] = true
			*usedDims = append(*usedDims, d)
		}
		return true
	}
	out := make([]workload.Index, 0, len(seq.items))
	for _, dimN := range seq.items {
		ix := workload.Index{}
		addScalar := func(s *node) {
			text, ok := ld.scalar(s, "projection term")
			if !ok {
				return
			}
			if v, err := strconv.Atoi(text); err == nil {
				ix.Offset += v
				return
			}
			if !isIdent(text) {
				ld.r.Reportf(CodeScalar, s.span, opName, "op %s: bad projection term %q", opName, text)
				return
			}
			if useDim(text, s.span) {
				ix.Terms = append(ix.Terms, workload.Term{Dim: text, Coef: 1})
			}
		}
		switch dimN.kind {
		case kindScalar:
			addScalar(dimN)
		case kindSequence:
			for _, term := range dimN.items {
				switch term.kind {
				case kindScalar:
					addScalar(term)
				case kindSequence:
					if len(term.items) < 1 || len(term.items) > 2 {
						ld.r.Reportf(CodeProblem, term.span, opName, "op %s: projection term must be [dim] or [dim, coef]", opName)
						continue
					}
					d, ok := ld.ident(term.items[0], "projection dimension")
					if !ok {
						continue
					}
					coef := 1
					if len(term.items) == 2 {
						if v, okC := ld.integer(term.items[1], "projection coefficient"); okC {
							coef = v
						}
					}
					if useDim(d, term.items[0].span) {
						ix.Terms = append(ix.Terms, workload.Term{Dim: d, Coef: coef})
					}
				default:
					ld.r.Reportf(CodeKind, term.span, opName, "op %s: bad projection term", opName)
				}
			}
		default:
			ld.r.Reportf(CodeKind, dimN.span, opName, "op %s: projection entries must be sequences or dimension names", opName)
		}
		out = append(out, ix)
	}
	return out
}

// parseOpKind maps the kind names of workload.OpKind.String.
func parseOpKind(s string) (workload.OpKind, bool) {
	switch strings.ToLower(s) {
	case "mac":
		return workload.KindMAC, true
	case "exp":
		return workload.KindExp, true
	case "max":
		return workload.KindMax, true
	case "sum":
		return workload.KindSum, true
	case "sub":
		return workload.KindSub, true
	case "div":
		return workload.KindDiv, true
	case "copy":
		return workload.KindCopy, true
	}
	return workload.KindMAC, false
}
