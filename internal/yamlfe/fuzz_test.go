package yamlfe

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
)

// FuzzYAML checks the loader's invariants on arbitrary input, seeded from
// the golden corpus (valid and invalid fixtures alike):
//
//   - Load never panics and never answers an uncoded failure: a nil
//     Config exactly when an error diagnostic was reported.
//   - Every diagnostic carries a registered code and an in-bounds span.
//   - Accepted configs reach a render fixpoint: Render(Load(src)) loads
//     strictly, and re-rendering reproduces it byte-for-byte. This is
//     the property the conformance YAML route relies on.
func FuzzYAML(f *testing.F) {
	for _, pat := range []string{
		filepath.Join("testdata", "cases", "*.yaml"),
		filepath.Join("testdata", "cases", "invalid", "*.yaml"),
	} {
		files, err := filepath.Glob(pat)
		if err != nil {
			f.Fatal(err)
		}
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Add("architecture: 1\nproblem: 2\nmapping: 3\n")
	f.Add("a:\n - b\n - c: {d: [1, 2}\n")

	f.Fuzz(func(t *testing.T, src string) {
		cfg, diags := Load(src)
		if (cfg == nil) != diags.HasErrors() {
			t.Fatalf("cfg==nil is %v but HasErrors is %v", cfg == nil, diags.HasErrors())
		}
		lines := strings.Count(src, "\n") + 1
		for _, d := range diags {
			if _, ok := diag.Lookup(d.Code); !ok {
				t.Fatalf("unregistered code %q", d.Code)
			}
			if d.Span.IsZero() {
				continue
			}
			if d.Span.Start.Line < 1 || d.Span.Start.Line > lines || d.Span.Start.Col < 1 {
				t.Fatalf("span %v out of bounds for %d-line input", d.Span, lines)
			}
		}
		if cfg == nil {
			return
		}
		rendered := Render(cfg.Spec, cfg.Graph, cfg.Root)
		cfg2, err := LoadStrict(rendered)
		if err != nil {
			t.Fatalf("rendered form no longer loads: %v\nrendered:\n%s", err, rendered)
		}
		if again := Render(cfg2.Spec, cfg2.Graph, cfg2.Root); again != rendered {
			t.Fatalf("render∘load is not a fixpoint\nfirst:\n%s\nsecond:\n%s", rendered, again)
		}
	})
}
