// Package yamlfe loads Timeloop-style YAML configurations — the
// architecture / problem / mapping triple the upstream TileFlow frontend
// speaks — onto this repository's native types: arch.Spec, workload.Graph
// and the core.Node analysis tree.
//
// The parser reads a YAML subset sufficient for those configs: block
// mappings, block and single-line flow sequences/mappings, plain and
// quoted scalars, and '#' comments. Anchors, aliases, multi-document
// streams and multi-line scalars are not supported. Every problem is
// reported as a coded, positioned diag.Diagnostic (TF-YAML-*), mirroring
// how notation.ParseSource reports errors, and parsing collects every
// problem instead of stopping at the first.
package yamlfe

import (
	"strings"

	"repro/internal/diag"
)

// kind classifies a parsed YAML node.
type kind int

const (
	kindScalar kind = iota
	kindMapping
	kindSequence
)

func (k kind) String() string {
	switch k {
	case kindMapping:
		return "mapping"
	case kindSequence:
		return "sequence"
	}
	return "scalar"
}

// node is one parsed YAML value. Mapping entries keep source order;
// duplicate keys are reported and dropped.
type node struct {
	kind kind
	span diag.Span

	// mapping
	keys     []string
	keySpans []diag.Span
	vals     []*node

	// sequence
	items []*node

	// scalar
	text   string
	quoted bool
}

// field returns the value for key, or nil.
func (n *node) field(key string) *node {
	if n == nil || n.kind != kindMapping {
		return nil
	}
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// keySpan returns the span of the given key, falling back to the node span.
func (n *node) keySpan(key string) diag.Span {
	if n != nil && n.kind == kindMapping {
		for i, k := range n.keys {
			if k == key {
				return n.keySpans[i]
			}
		}
	}
	if n != nil {
		return n.span
	}
	return diag.Span{}
}

// isNull reports whether the node is the empty scalar produced by a key
// with no value.
func (n *node) isNull() bool {
	return n.kind == kindScalar && n.text == "" && !n.quoted
}

// yline is one pre-scanned source line: indentation, the content range
// [lo, hi) with comments and trailing blanks stripped, and its position.
type yline struct {
	raw    string
	off    int // byte offset of the line start in the source
	num    int // 1-based line number
	indent int
	lo, hi int
}

// parser parses the pre-scanned lines into a node tree, collecting
// diagnostics and recovering by skipping lines so one malformed entry
// does not hide the rest.
type parser struct {
	r     diag.Reporter
	lines []yline
	i     int
}

// parseYAML parses src into a root node. The root is nil when the
// document has no content; syntax problems are reported to r.
func parseYAML(src string, r *diag.Reporter) *node {
	p := &parser{r: *r}
	defer func() { *r = p.r }()
	p.scan(src)
	if len(p.lines) == 0 {
		return nil
	}
	first := p.lines[0]
	root := p.parseNode(first.indent)
	if p.i < len(p.lines) {
		ln := p.lines[p.i]
		p.r.Reportf(CodeSyntax, p.span(ln, ln.lo, ln.hi), "",
			"unexpected content after the top-level %s", root.kind)
	}
	return root
}

// scan splits src into content-bearing lines, stripping comments (a '#'
// at line start or after a blank, outside quotes) and trailing blanks,
// and rejecting tabs in indentation.
func (p *parser) scan(src string) {
	off := 0
	for num, raw := range strings.Split(src, "\n") {
		ln := yline{raw: raw, off: off, num: num + 1}
		off += len(raw) + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			p.r.Reportf(CodeSyntax, p.span(ln, indent, indent+1), "",
				"tab in indentation; use spaces")
			continue
		}
		ln.indent = indent
		ln.lo = indent
		ln.hi = stripComment(raw, indent)
		for ln.hi > ln.lo && (raw[ln.hi-1] == ' ' || raw[ln.hi-1] == '\r') {
			ln.hi--
		}
		if ln.lo >= ln.hi {
			continue
		}
		content := raw[ln.lo:ln.hi]
		if indent == 0 && (content == "---" || content == "...") {
			continue
		}
		p.lines = append(p.lines, ln)
	}
}

// stripComment returns the end of the uncommented content of raw, scanning
// from lo while respecting single and double quotes.
func stripComment(raw string, lo int) int {
	quote := byte(0)
	for j := lo; j < len(raw); j++ {
		c := raw[j]
		switch {
		case quote == '"' && c == '\\':
			j++
		case quote != 0 && c == quote:
			quote = 0
		case quote == 0 && (c == '"' || c == '\''):
			quote = c
		case quote == 0 && c == '#' && (j == lo || raw[j-1] == ' ' || raw[j-1] == '\t'):
			return j
		}
	}
	return len(raw)
}

// span builds a diag.Span for raw[a:b) of line ln.
func (p *parser) span(ln yline, a, b int) diag.Span {
	return diag.Span{
		Start: diag.Pos{Offset: ln.off + a, Line: ln.num, Col: a + 1},
		End:   diag.Pos{Offset: ln.off + b, Line: ln.num, Col: b + 1},
	}
}

func (p *parser) cur() yline { return p.lines[p.i] }

// parseNode parses the value beginning at column col of the current line,
// consuming that line and any continuation lines.
func (p *parser) parseNode(col int) *node {
	ln := p.cur()
	c := ln.raw[col]
	switch {
	case c == '[' || c == '{':
		return p.parseFlowLine(col)
	case isDashAt(ln, col):
		return p.parseSequence(col)
	default:
		if colon := keyColon(ln, col); colon >= 0 {
			return p.parseMapping(col)
		}
		return p.parseScalarLine(col)
	}
}

// isDashAt reports whether line ln has a sequence dash at column col.
func isDashAt(ln yline, col int) bool {
	if col >= ln.hi || ln.raw[col] != '-' {
		return false
	}
	return col+1 >= ln.hi || ln.raw[col+1] == ' '
}

// keyColon finds the position of the mapping colon of the entry starting
// at column from of ln: a ':' outside quotes and brackets followed by a
// blank or the line end. Returns -1 when the rest of the line is not a
// mapping entry.
func keyColon(ln yline, from int) int {
	quote := byte(0)
	depth := 0
	for j := from; j < ln.hi; j++ {
		c := ln.raw[j]
		switch {
		case quote == '"' && c == '\\':
			j++
		case quote != 0 && c == quote:
			quote = 0
		case quote != 0:
		case c == '"' || c == '\'':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0 && (j+1 >= ln.hi || ln.raw[j+1] == ' '):
			return j
		}
	}
	return -1
}

// parseSequence parses a block sequence whose dashes sit at column col.
// Like parseMapping, the first item may start mid-line (a nested sequence
// after an outer dash, "- - x"), where the line's indent is the outer
// column; continuation dashes are full lines indented exactly col.
func (p *parser) parseSequence(col int) *node {
	n := &node{kind: kindSequence}
	first := p.cur()
	n.span = p.span(first, col, col+1)
	for p.i < len(p.lines) {
		ln := p.cur()
		if !isDashAt(ln, col) || (len(n.items) > 0 && ln.indent != col) {
			break
		}
		start := p.i
		rest := col + 1
		for rest < ln.hi && ln.raw[rest] == ' ' {
			rest++
		}
		var item *node
		if rest >= ln.hi {
			p.i++
			if p.i < len(p.lines) && p.cur().indent > col {
				item = p.parseNode(p.cur().indent)
			} else {
				item = &node{kind: kindScalar, span: p.span(ln, col, col+1)}
			}
		} else {
			item = p.parseNode(rest)
		}
		n.items = append(n.items, item)
		n.span.End = item.span.End
		if p.i == start {
			// The item consumed nothing (degenerate nesting); skip the
			// line rather than loop on it forever.
			p.i++
		}
	}
	return n
}

// parseMapping parses a block mapping whose keys sit at column col. The
// first entry may start mid-line (after a sequence dash); continuation
// entries are full lines indented exactly col.
func (p *parser) parseMapping(col int) *node {
	n := &node{kind: kindMapping}
	ln := p.cur()
	n.span = p.span(ln, col, ln.hi)
	seen := map[string]bool{}
	for p.i < len(p.lines) {
		ln = p.cur()
		if ln.indent > col && len(n.keys) > 0 {
			p.r.Reportf(CodeSyntax, p.span(ln, ln.lo, ln.hi), "",
				"unexpected indentation (mapping keys at this level start at column %d)", col+1)
			p.i++
			continue
		}
		kcol := col
		if len(n.keys) == 0 {
			// first entry: starts at col on the current line by contract
		} else if ln.indent != col {
			break
		}
		colon := keyColon(ln, kcol)
		if colon < 0 {
			if len(n.keys) == 0 {
				// not reachable from parseNode, which checked keyColon
				break
			}
			break
		}
		key, keySpan, ok := p.parseKey(ln, kcol, colon)
		if !ok {
			p.i++
			continue
		}
		val := p.parseMapValue(ln, colon, col)
		if seen[key] {
			p.r.Reportf(CodeDupKey, keySpan, "", "duplicate key %q (first wins)", key)
		} else {
			seen[key] = true
			n.keys = append(n.keys, key)
			n.keySpans = append(n.keySpans, keySpan)
			n.vals = append(n.vals, val)
		}
		n.span.End = val.span.End
		if n.span.End.Line == 0 {
			n.span.End = keySpan.End
		}
	}
	return n
}

// parseKey extracts the mapping key in ln.raw[kcol:colon].
func (p *parser) parseKey(ln yline, kcol, colon int) (string, diag.Span, bool) {
	a, b := kcol, colon
	for b > a && ln.raw[b-1] == ' ' {
		b--
	}
	sp := p.span(ln, a, b)
	if a >= b {
		p.r.Reportf(CodeSyntax, p.span(ln, kcol, colon+1), "", "empty mapping key")
		return "", sp, false
	}
	raw := ln.raw[a:b]
	if raw[0] == '"' || raw[0] == '\'' {
		text, end, ok := unquote(ln.raw, a)
		if !ok || end != b {
			p.r.Reportf(CodeSyntax, sp, "", "bad quoted key %s", raw)
			return "", sp, false
		}
		return text, sp, true
	}
	return raw, sp, true
}

// parseMapValue parses the value of a mapping entry whose colon is at
// position colon of ln; col is the mapping's key column.
func (p *parser) parseMapValue(ln yline, colon, col int) *node {
	vstart := colon + 1
	for vstart < ln.hi && ln.raw[vstart] == ' ' {
		vstart++
	}
	if vstart < ln.hi {
		c := ln.raw[vstart]
		if c == '[' || c == '{' {
			return p.parseFlowLine(vstart)
		}
		return p.parseScalarLine(vstart)
	}
	p.i++
	if p.i < len(p.lines) {
		next := p.cur()
		if next.indent > col {
			return p.parseNode(next.indent)
		}
		if next.indent == col && isDashAt(next, col) {
			// A block sequence may sit at the same indent as its key.
			return p.parseSequence(col)
		}
	}
	return &node{kind: kindScalar, span: p.span(ln, colon, colon+1)}
}

// parseScalarLine parses a single-line scalar starting at column col and
// consumes the line.
func (p *parser) parseScalarLine(col int) *node {
	ln := p.cur()
	p.i++
	c := ln.raw[col]
	if c == '"' || c == '\'' {
		text, end, ok := unquote(ln.raw, col)
		if !ok {
			p.r.Reportf(CodeSyntax, p.span(ln, col, ln.hi), "", "unterminated quoted scalar")
			return &node{kind: kindScalar, span: p.span(ln, col, ln.hi), quoted: true}
		}
		if end != ln.hi {
			p.r.Reportf(CodeSyntax, p.span(ln, end, ln.hi), "",
				"trailing characters after quoted scalar")
		}
		return &node{kind: kindScalar, span: p.span(ln, col, end), text: text, quoted: true}
	}
	return &node{kind: kindScalar, span: p.span(ln, col, ln.hi), text: ln.raw[col:ln.hi]}
}

// parseFlowLine parses a single-line flow collection starting at col and
// consumes the line.
func (p *parser) parseFlowLine(col int) *node {
	ln := p.cur()
	p.i++
	n, end, ok := p.parseFlow(ln, col)
	if !ok {
		return n
	}
	for end < ln.hi && ln.raw[end] == ' ' {
		end++
	}
	if end != ln.hi {
		p.r.Reportf(CodeSyntax, p.span(ln, end, ln.hi), "",
			"trailing characters after flow collection")
	}
	return n
}

// parseFlow parses one flow value ('[...]', '{...}' or a scalar) at
// position j of ln, returning the node and the position after it.
func (p *parser) parseFlow(ln yline, j int) (*node, int, bool) {
	for j < ln.hi && ln.raw[j] == ' ' {
		j++
	}
	if j >= ln.hi {
		p.r.Reportf(CodeSyntax, p.span(ln, ln.hi, ln.hi), "", "missing flow value")
		return &node{kind: kindScalar, span: p.span(ln, ln.hi, ln.hi)}, j, false
	}
	switch ln.raw[j] {
	case '[':
		return p.parseFlowSeq(ln, j)
	case '{':
		return p.parseFlowMap(ln, j)
	case '"', '\'':
		text, end, ok := unquote(ln.raw, j)
		if !ok || end > ln.hi {
			p.r.Reportf(CodeSyntax, p.span(ln, j, ln.hi), "", "unterminated quoted scalar")
			return &node{kind: kindScalar, span: p.span(ln, j, ln.hi), quoted: true}, ln.hi, false
		}
		return &node{kind: kindScalar, span: p.span(ln, j, end), text: text, quoted: true}, end, true
	default:
		a := j
		for j < ln.hi && !strings.ContainsRune(",]}:", rune(ln.raw[j])) {
			j++
		}
		// A ':' inside a flow scalar is only a separator in flow mappings;
		// the caller re-scans for it. Trim trailing blanks.
		b := j
		for b > a && ln.raw[b-1] == ' ' {
			b--
		}
		return &node{kind: kindScalar, span: p.span(ln, a, b), text: ln.raw[a:b]}, j, true
	}
}

func (p *parser) parseFlowSeq(ln yline, j int) (*node, int, bool) {
	n := &node{kind: kindSequence}
	start := j
	j++ // consume '['
	for {
		for j < ln.hi && ln.raw[j] == ' ' {
			j++
		}
		if j >= ln.hi {
			p.r.Reportf(CodeSyntax, p.span(ln, start, ln.hi), "", "unterminated flow sequence")
			n.span = p.span(ln, start, ln.hi)
			return n, ln.hi, false
		}
		if ln.raw[j] == ']' {
			n.span = p.span(ln, start, j+1)
			return n, j + 1, true
		}
		if len(n.items) > 0 {
			if ln.raw[j] != ',' {
				p.r.Reportf(CodeSyntax, p.span(ln, j, j+1), "", "expected ',' or ']' in flow sequence")
				n.span = p.span(ln, start, j)
				return n, j, false
			}
			j++
		}
		item, next, ok := p.parseFlow(ln, j)
		if !ok {
			n.span = p.span(ln, start, next)
			return n, next, false
		}
		n.items = append(n.items, item)
		j = next
	}
}

func (p *parser) parseFlowMap(ln yline, j int) (*node, int, bool) {
	n := &node{kind: kindMapping}
	start := j
	seen := map[string]bool{}
	j++ // consume '{'
	for {
		for j < ln.hi && ln.raw[j] == ' ' {
			j++
		}
		if j >= ln.hi {
			p.r.Reportf(CodeSyntax, p.span(ln, start, ln.hi), "", "unterminated flow mapping")
			n.span = p.span(ln, start, ln.hi)
			return n, ln.hi, false
		}
		if ln.raw[j] == '}' {
			n.span = p.span(ln, start, j+1)
			return n, j + 1, true
		}
		if len(n.keys) > 0 || len(seen) > 0 {
			if ln.raw[j] != ',' {
				p.r.Reportf(CodeSyntax, p.span(ln, j, j+1), "", "expected ',' or '}' in flow mapping")
				n.span = p.span(ln, start, j)
				return n, j, false
			}
			j++
		}
		key, next, ok := p.parseFlow(ln, j)
		if !ok {
			n.span = p.span(ln, start, next)
			return n, next, false
		}
		j = next
		for j < ln.hi && ln.raw[j] == ' ' {
			j++
		}
		if key.kind != kindScalar || j >= ln.hi || ln.raw[j] != ':' {
			p.r.Reportf(CodeSyntax, key.span, "", "expected 'key: value' in flow mapping")
			n.span = p.span(ln, start, j)
			return n, j, false
		}
		j++
		val, next, ok := p.parseFlow(ln, j)
		if !ok {
			n.span = p.span(ln, start, next)
			return n, next, false
		}
		j = next
		if seen[key.text] {
			p.r.Reportf(CodeDupKey, key.span, "", "duplicate key %q (first wins)", key.text)
		} else {
			seen[key.text] = true
			n.keys = append(n.keys, key.text)
			n.keySpans = append(n.keySpans, key.span)
			n.vals = append(n.vals, val)
		}
	}
}

// unquote reads a quoted scalar starting at raw[j] and returns the
// unescaped text and the position just past the closing quote. Double
// quotes support \\, \", \n and \t escapes; single quotes are literal
// with '' as an escaped quote.
func unquote(raw string, j int) (string, int, bool) {
	q := raw[j]
	var b strings.Builder
	for k := j + 1; k < len(raw); k++ {
		c := raw[k]
		switch {
		case q == '"' && c == '\\' && k+1 < len(raw):
			k++
			switch raw[k] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(raw[k])
			}
		case q == '\'' && c == '\'' && k+1 < len(raw) && raw[k+1] == '\'':
			b.WriteByte('\'')
			k++
		case c == q:
			return b.String(), k + 1, true
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), len(raw), false
}
