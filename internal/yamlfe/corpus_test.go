// Corpus conformance: every golden config under testdata/cases must load
// cleanly, evaluate, and answer byte-identical results along four routes:
// direct core.Evaluate, the Render round-trip, POST /v1/evaluate with
// config_yaml, and the equivalent notation-route request.
//
// This file lives in package yamlfe_test because it drives internal/serve,
// which itself imports yamlfe.
package yamlfe_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// corpusFiles lists the valid golden configs, skipping the invalid/ tree.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "cases", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden configs under testdata/cases")
	}
	return files
}

func postEvaluate(t *testing.T, url string, req *serve.EvaluateRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.EvaluateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	res, err := json.Marshal(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, res
}

// TestCorpus loads every golden config and checks the four evaluation
// routes agree byte-for-byte.
func TestCorpus(t *testing.T) {
	hs := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer hs.Close()

	for _, file := range corpusFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			cfg, diags := yamlfe.Load(string(src))
			if cfg == nil {
				t.Fatalf("load failed:\n%s", diags)
			}
			if diags.HasErrors() {
				t.Errorf("unexpected error diagnostics:\n%s", diags)
			}

			res, err := core.Evaluate(cfg.Root, cfg.Graph, cfg.Spec, core.Options{})
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			ref, err := json.Marshal(serve.NewResultJSON(res, cfg.Spec))
			if err != nil {
				t.Fatal(err)
			}

			// Route 2: Render round-trip through the loader.
			rendered := yamlfe.Render(cfg.Spec, cfg.Graph, cfg.Root)
			rcfg, err := yamlfe.LoadStrict(rendered)
			if err != nil {
				t.Fatalf("round-trip load: %v", err)
			}
			rres, err := core.Evaluate(rcfg.Root, rcfg.Graph, rcfg.Spec, core.Options{})
			if err != nil {
				t.Fatalf("round-trip evaluate: %v", err)
			}
			rb, err := json.Marshal(serve.NewResultJSON(rres, rcfg.Spec))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rb, ref) {
				t.Errorf("round-trip result differs:\n got %s\nwant %s", rb, ref)
			}

			// Route 3: the config_yaml HTTP route.
			status, hb := postEvaluate(t, hs.URL, &serve.EvaluateRequest{ConfigYAML: string(src)})
			if status != http.StatusOK {
				t.Fatalf("config route status %d", status)
			}
			if !bytes.Equal(hb, ref) {
				t.Errorf("config route result differs:\n got %s\nwant %s", hb, ref)
			}

			// Route 4: the equivalent notation-route request.
			status, nb := postEvaluate(t, hs.URL, &serve.EvaluateRequest{
				ArchSpec:     arch.FormatSpec(cfg.Spec),
				WorkloadSpec: workload.CanonicalGraph(cfg.Graph),
				Notation:     notation.Print(cfg.Root),
			})
			if status != http.StatusOK {
				t.Fatalf("notation route status %d", status)
			}
			if !bytes.Equal(nb, ref) {
				t.Errorf("notation route result differs:\n got %s\nwant %s", nb, ref)
			}
		})
	}
}
