package yamlfe

import "repro/internal/diag"

// Diagnostic codes for the Timeloop-style YAML config frontend. Every
// loader failure surfaces as one of these, positioned at the offending
// token, mirroring the TF-PARSE/TF-NAME/TF-BIND taxonomy of
// internal/notation.
var (
	// CodeSyntax covers malformed YAML in the supported subset: tabs in
	// indentation, unterminated quotes or flow collections, missing ':'
	// in a mapping entry, bad indentation.
	CodeSyntax = diag.Register(diag.Info{
		Code:  "TF-YAML-001",
		Title: "YAML syntax error",
		Hint:  "the loader reads a YAML subset: block mappings, block/flow sequences, plain or quoted scalars, '#' comments",
	})

	// CodeKind marks a node of the wrong kind, e.g. a scalar where a
	// mapping is required.
	CodeKind = diag.Register(diag.Info{
		Code:  "TF-YAML-002",
		Title: "wrong YAML node kind",
	})

	// CodeMissing marks a required field that is absent.
	CodeMissing = diag.Register(diag.Info{
		Code:  "TF-YAML-003",
		Title: "missing required field",
	})

	// CodeUnknownField marks a field the loader does not understand; it
	// is skipped.
	CodeUnknownField = diag.Register(diag.Info{
		Code:     "TF-YAML-004",
		Severity: diag.Warning,
		Title:    "unknown field ignored",
	})

	// CodeScalar marks a scalar that does not parse as the expected type
	// (integer, float, capacity, identifier, ...).
	CodeScalar = diag.Register(diag.Info{
		Code:  "TF-YAML-005",
		Title: "bad scalar value",
	})

	// CodeDupKey marks a duplicated mapping key; the first wins.
	CodeDupKey = diag.Register(diag.Info{
		Code:  "TF-YAML-006",
		Title: "duplicate mapping key",
	})

	// CodeArch marks an architecture section that does not describe a
	// valid linear memory hierarchy.
	CodeArch = diag.Register(diag.Info{
		Code:  "TF-YAML-007",
		Title: "invalid architecture section",
		Hint:  "the architecture must be a linear subtree chain of storage levels over a PE array",
	})

	// CodeProblem marks a problem section that does not assemble into a
	// valid operator graph.
	CodeProblem = diag.Register(diag.Info{
		Code:  "TF-YAML-008",
		Title: "invalid problem section",
	})

	// CodeMapping marks a mapping section that does not assemble into a
	// valid analysis tree.
	CodeMapping = diag.Register(diag.Info{
		Code:  "TF-YAML-009",
		Title: "invalid mapping section",
	})

	// CodeUnknownRef marks a reference to an undeclared name: an op the
	// problem does not define, a target level the architecture lacks, a
	// dimension no op iterates.
	CodeUnknownRef = diag.Register(diag.Info{
		Code:  "TF-YAML-010",
		Title: "unknown reference",
	})

	// CodeNotModeled marks an attribute the loader accepts for
	// compatibility but the cost model ignores (split, multicast).
	CodeNotModeled = diag.Register(diag.Info{
		Code:     "TF-YAML-011",
		Severity: diag.Warning,
		Title:    "attribute accepted but not modeled",
	})
)
