package yamlfe

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/workload"
)

// mapLoader carries the per-mapping state: the graph and spec to resolve
// names against, used node labels, and a counter for synthesized names.
type mapLoader struct {
	ld    *loader
	g     *workload.Graph
	spec  *arch.Spec
	names map[string]bool
	tiles int
}

// loadMapping assembles the mapping node tree — Scope / Tile / Op nodes —
// into a core.Node analysis tree.
func (ld *loader) loadMapping(n *node, g *workload.Graph, spec *arch.Spec) *core.Node {
	mm := ld.mapping(n, "mapping")
	if mm == nil {
		return nil
	}
	ml := &mapLoader{ld: ld, g: g, spec: spec, names: map[string]bool{}}
	if nt, _ := ml.nodeType(mm); nt != "tile" {
		ld.r.Reportf(CodeMapping, mm.span, "", "mapping root must be a Tile node, got %q", nt)
		return nil
	}
	root := ml.loadNode(mm)
	if ld.r.HasErrors() {
		return nil
	}
	return root
}

// nodeType reads a node's node-type field, lowercased.
func (ml *mapLoader) nodeType(m *node) (string, diag.Span) {
	f := fieldEither(m, "node-type", "node_type")
	if f == nil {
		ml.ld.r.Reportf(CodeMissing, m.span, "", "mapping node: missing %q", "node-type")
		return "", m.span
	}
	s, ok := ml.ld.str(f, "node-type")
	if !ok {
		return "", f.span
	}
	return strings.ToLower(s), f.span
}

// loadNode loads one Tile or Op node. Scope nodes are handled by their
// parent Tile and rejected elsewhere.
func (ml *mapLoader) loadNode(n *node) *core.Node {
	m := ml.ld.mapping(n, "mapping node")
	if m == nil {
		return nil
	}
	nt, ntSpan := ml.nodeType(m)
	switch nt {
	case "tile":
		return ml.loadTile(m)
	case "op":
		return ml.loadOpNode(m)
	case "scope":
		ml.ld.r.Reportf(CodeMapping, ntSpan, "", "a Scope node must be the sole child of a Tile node")
		return nil
	case "":
		return nil
	default:
		ml.ld.r.Reportf(CodeMapping, ntSpan, "", "unknown node-type %q (want Tile, Scope or Op)", nt)
		return nil
	}
}

// claimName registers a node label, rejecting duplicates.
func (ml *mapLoader) claimName(name string, span diag.Span) bool {
	if ml.names[name] {
		ml.ld.r.Reportf(CodeMapping, span, name, "duplicate mapping node name %q", name)
		return false
	}
	ml.names[name] = true
	return true
}

// loadTile loads a Tile node: a loop nest staged at a target level over a
// subtree of children, optionally bound through a sole Scope child.
func (ml *mapLoader) loadTile(m *node) *core.Node {
	ld := ml.ld
	ld.checkFields(m, "Tile node",
		"node-type", "node_type", "name", "target", "type", "factors", "permutation", "split", "multicast", "subtree")
	name := fmt.Sprintf("tile%d", ml.tiles)
	ml.tiles++
	nameSpan := m.span
	if f := m.field("name"); f != nil {
		if s, ok := ld.ident(f, "Tile name"); ok {
			name, nameSpan = s, f.span
		}
	}
	if !ml.claimName(name, nameSpan) {
		return nil
	}
	level := -1
	tgt := m.field("target")
	if tgt == nil {
		ld.r.Reportf(CodeMissing, m.span, name, "Tile %s: missing %q", name, "target")
		return nil
	}
	if s, ok := ld.str(tgt, "Tile target"); ok {
		if v, err := strconv.Atoi(s); err == nil {
			if v < 0 || v >= ml.spec.NumLevels() {
				ld.r.Reportf(CodeUnknownRef, tgt.span, name, "Tile %s: target level %d out of range (arch has %d levels)", name, v, ml.spec.NumLevels())
				return nil
			}
			level = v
		} else if level = ml.spec.LevelIndex(s); level < 0 {
			ld.r.Reportf(CodeUnknownRef, tgt.span, name, "Tile %s: unknown target level %q", name, s)
			return nil
		}
	} else {
		return nil
	}
	loops := ml.parseFactors(m, name, nil)
	if f := m.field("permutation"); f != nil {
		loops = ml.applyPermutation(f, name, loops)
	}
	for _, extra := range []string{"split", "multicast"} {
		if f := m.field(extra); f != nil {
			ld.r.Reportf(CodeNotModeled, f.span, name, "Tile %s: %q is accepted but not modeled", name, extra)
		}
	}
	sub := m.field("subtree")
	if sub == nil {
		ld.r.Reportf(CodeMissing, m.span, name, "Tile %s: missing %q (interior tiles need children)", name, "subtree")
		return nil
	}
	seq := ld.sequence(sub, "Tile subtree")
	if seq == nil || len(seq.items) == 0 {
		if seq != nil {
			ld.r.Reportf(CodeMapping, seq.span, name, "Tile %s: empty subtree", name)
		}
		return nil
	}
	binding := core.Seq
	items := seq.items
	// A sole Scope child sets the inter-tile binding of this tile's
	// children, which are the scope's own subtree.
	if len(items) == 1 && peekNodeType(items[0]) == "scope" {
		var ok bool
		binding, items, ok = ml.loadScope(items[0])
		if !ok {
			return nil
		}
	}
	kids := make([]*core.Node, 0, len(items))
	for _, item := range items {
		kid := ml.loadNode(item)
		if kid == nil {
			return nil
		}
		if kid.Level > level {
			ld.r.Reportf(CodeMapping, item.span, name, "Tile %s: child %q targets level %d above its parent's level %d", name, kid.Name, kid.Level, level)
			return nil
		}
		kids = append(kids, kid)
	}
	return core.Tile(name, level, binding, loops, kids...)
}

// scopeBindings maps Scope type names onto the inter-tile primitives of
// Table 1.
var scopeBindings = map[string]core.Binding{
	"sharing":    core.Shar,
	"temporal":   core.Seq,
	"sequential": core.Seq,
	"spatial":    core.Para,
	"parallel":   core.Para,
	"pipeline":   core.Pipe,
}

// peekNodeType reads a node's node-type without reporting, for the
// sole-Scope-child lookahead.
func peekNodeType(n *node) string {
	if n == nil || n.kind != kindMapping {
		return ""
	}
	f := fieldEither(n, "node-type", "node_type")
	if f == nil || f.kind != kindScalar {
		return ""
	}
	return strings.ToLower(f.text)
}

// loadScope reads a Scope node's binding and child list.
func (ml *mapLoader) loadScope(n *node) (core.Binding, []*node, bool) {
	ld := ml.ld
	m := ld.mapping(n, "Scope node")
	if m == nil {
		return 0, nil, false
	}
	ld.checkFields(m, "Scope node", "node-type", "node_type", "type", "subtree")
	binding := core.Seq
	tf := m.field("type")
	if tf == nil {
		ld.r.Reportf(CodeMissing, m.span, "", "Scope node: missing %q", "type")
		return 0, nil, false
	}
	s, ok := ld.str(tf, "Scope type")
	if !ok {
		return 0, nil, false
	}
	binding, known := scopeBindings[strings.ToLower(s)]
	if !known {
		ld.r.Reportf(CodeMapping, tf.span, "", "unknown Scope type %q (want Sharing, Temporal, Spatial or Pipeline)", s)
		return 0, nil, false
	}
	sub := m.field("subtree")
	if sub == nil {
		ld.r.Reportf(CodeMissing, m.span, "", "Scope node: missing %q", "subtree")
		return 0, nil, false
	}
	seq := ld.sequence(sub, "Scope subtree")
	if seq == nil || len(seq.items) == 0 {
		if seq != nil {
			ld.r.Reportf(CodeMapping, seq.span, "", "Scope node: empty subtree")
		}
		return 0, nil, false
	}
	return binding, seq.items, true
}

// loadOpNode loads an Op leaf: the operator it computes, an optional
// iteration-name binding, and its register-level loops.
func (ml *mapLoader) loadOpNode(m *node) *core.Node {
	ld := ml.ld
	ld.checkFields(m, "Op node", "node-type", "node_type", "name", "label", "binding", "factors")
	opName := ""
	var opSpan diag.Span
	if f := m.field("name"); f != nil {
		opName, _ = ld.ident(f, "Op name")
		opSpan = f.span
	} else {
		ld.r.Reportf(CodeMissing, m.span, "", "Op node: missing %q (the operator name)", "name")
		return nil
	}
	if opName == "" {
		return nil
	}
	op := ml.g.Op(opName)
	if op == nil {
		ld.r.Reportf(CodeUnknownRef, opSpan, "", "Op node: the problem defines no operator %q", opName)
		return nil
	}
	label := "t_" + opName
	labelSpan := opSpan
	if f := m.field("label"); f != nil {
		if s, ok := ld.ident(f, "Op label"); ok {
			label, labelSpan = s, f.span
		}
	}
	if !ml.claimName(label, labelSpan) {
		return nil
	}
	rename := map[string]string{}
	if f := m.field("binding"); f != nil {
		if bm := ld.mapping(f, "Op binding"); bm != nil {
			for i, iter := range bm.keys {
				if d, ok := ld.ident(bm.vals[i], "Op binding target"); ok {
					rename[iter] = d
				}
			}
		}
	}
	loops := ml.parseFactors(m, label, func(dim string, span diag.Span) (string, bool) {
		if d, ok := rename[dim]; ok {
			dim = d
		}
		if !op.HasDim(dim) {
			ld.r.Reportf(CodeUnknownRef, span, label, "Op %s: operator %q has no dimension %q", label, opName, dim)
			return "", false
		}
		return dim, true
	})
	return core.Leaf(label, op, loops...)
}

// parseFactors reads a node's factors — "m=4 s:n=2 k=8" as one scalar or
// a sequence of such items — into loops. The node's `type` field sets the
// default loop kind; an s:/t: prefix overrides it per factor. resolve, when
// non-nil, maps and validates each dimension name.
func (ml *mapLoader) parseFactors(m *node, nodeName string, resolve func(string, diag.Span) (string, bool)) []core.Loop {
	ld := ml.ld
	defKind := core.Temporal
	if f := m.field("type"); f != nil {
		if s, ok := ld.str(f, "node type"); ok {
			switch strings.ToLower(s) {
			case "temporal":
			case "spatial":
				defKind = core.Spatial
			default:
				ld.r.Reportf(CodeScalar, f.span, nodeName, "%s: bad loop type %q (want temporal or spatial)", nodeName, s)
			}
		}
	}
	f := m.field("factors")
	if f == nil {
		return nil
	}
	type factorItem struct {
		text string
		span diag.Span
	}
	var items []factorItem
	switch f.kind {
	case kindSequence:
		for _, it := range f.items {
			if s, ok := ld.str(it, "factor"); ok {
				items = append(items, factorItem{text: s, span: it.span})
			}
		}
	case kindScalar:
		// Plain scalars are raw source substrings, so item spans can be
		// derived from the node span by offset.
		base := f.span.Start
		pos := 0
		for pos < len(f.text) {
			for pos < len(f.text) && (f.text[pos] == ' ' || f.text[pos] == ',') {
				pos++
			}
			start := pos
			for pos < len(f.text) && f.text[pos] != ' ' && f.text[pos] != ',' {
				pos++
			}
			if start == pos {
				continue
			}
			sp := f.span
			if !f.quoted {
				sp = diag.Span{
					Start: diag.Pos{Offset: base.Offset + start, Line: base.Line, Col: base.Col + start},
					End:   diag.Pos{Offset: base.Offset + pos, Line: base.Line, Col: base.Col + pos},
				}
			}
			items = append(items, factorItem{text: f.text[start:pos], span: sp})
		}
	default:
		ld.r.Reportf(CodeKind, f.span, nodeName, "%s: factors must be a scalar or a sequence", nodeName)
		return nil
	}
	var loops []core.Loop
	for _, it := range items {
		kind := defKind
		text := it.text
		switch {
		case strings.HasPrefix(text, "s:"):
			kind, text = core.Spatial, text[2:]
		case strings.HasPrefix(text, "t:"):
			kind, text = core.Temporal, text[2:]
		}
		dim, extStr, ok := strings.Cut(text, "=")
		if !ok || dim == "" {
			ld.r.Reportf(CodeScalar, it.span, nodeName, "%s: bad factor %q (want dim=extent)", nodeName, it.text)
			continue
		}
		ext, err := strconv.Atoi(extStr)
		if err != nil || ext < 1 {
			ld.r.Reportf(CodeScalar, it.span, nodeName, "%s: bad extent in factor %q", nodeName, it.text)
			continue
		}
		if !isIdent(dim) {
			ld.r.Reportf(CodeScalar, it.span, nodeName, "%s: bad dimension in factor %q", nodeName, it.text)
			continue
		}
		if resolve != nil {
			dim, ok = resolve(dim, it.span)
			if !ok {
				continue
			}
		} else if ml.g.DimSize(dim) == 0 {
			ld.r.Reportf(CodeUnknownRef, it.span, nodeName, "%s: no operator iterates dimension %q", nodeName, dim)
			continue
		}
		loops = append(loops, core.Loop{Dim: dim, Extent: ext, Kind: kind})
	}
	return loops
}

// applyPermutation reorders loops by the given dimension order. It
// requires the factor dimensions to be unique.
func (ml *mapLoader) applyPermutation(f *node, nodeName string, loops []core.Loop) []core.Loop {
	ld := ml.ld
	names, _ := ld.nameList(f, "permutation")
	if len(names) == 0 {
		return loops
	}
	byDim := map[string]int{}
	for i, l := range loops {
		if _, dup := byDim[l.Dim]; dup {
			ld.r.Reportf(CodeMapping, f.span, nodeName, "%s: permutation requires unique factor dimensions (%q repeats)", nodeName, l.Dim)
			return loops
		}
		byDim[l.Dim] = i
	}
	if len(names) != len(loops) {
		ld.r.Reportf(CodeMapping, f.span, nodeName, "%s: permutation lists %d dimensions, factors have %d", nodeName, len(names), len(loops))
		return loops
	}
	out := make([]core.Loop, 0, len(loops))
	seen := map[string]bool{}
	for _, d := range names {
		i, ok := byDim[d]
		if !ok || seen[d] {
			ld.r.Reportf(CodeMapping, f.span, nodeName, "%s: permutation entry %q does not name a distinct factor dimension", nodeName, d)
			return loops
		}
		seen[d] = true
		out = append(out, loops[i])
	}
	return out
}
