package yamlfe

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Render emits a design point as a Timeloop-style YAML config that Load
// reconstructs exactly: same spec, same graph, same tree. It is the
// inverse the conformance YAML route and the fuzz fixpoint rely on, and
// requires every name (levels, tensors, ops, dims, node labels) to be a
// plain identifier.
func Render(spec *arch.Spec, g *workload.Graph, root *core.Node) string {
	var b strings.Builder
	renderArch(&b, spec)
	renderProblem(&b, g)
	renderMapping(&b, root)
	return b.String()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderArch writes the architecture as a linear chain of containers,
// one per storage level, whose multiplicities reproduce the fanouts.
func renderArch(b *strings.Builder, spec *arch.Spec) {
	fmt.Fprintf(b, "architecture:\n")
	fmt.Fprintf(b, "  name: %s\n", spec.Name)
	fmt.Fprintf(b, "  attributes:\n")
	fmt.Fprintf(b, "    freq_ghz: %s\n", ftoa(spec.FreqGHz))
	fmt.Fprintf(b, "    word_bytes: %d\n", spec.WordBytes)
	fmt.Fprintf(b, "    macs_per_pe: %d\n", spec.MACsPerPE)
	fmt.Fprintf(b, "    vector_lanes: %d\n", spec.VectorLanesPerSubcore)
	fmt.Fprintf(b, "    mesh: [%d, %d]\n", spec.MeshX, spec.MeshY)
	if len(spec.DirectAccess) > 0 {
		pairs := make([]string, len(spec.DirectAccess))
		for i, p := range spec.DirectAccess {
			pairs[i] = fmt.Sprintf("[%d, %d]", p[0], p[1])
		}
		fmt.Fprintf(b, "    direct_access: [%s]\n", strings.Join(pairs, ", "))
	}
	indent := "  "
	for i := spec.NumLevels() - 1; i >= 0; i-- {
		l := spec.Levels[i]
		// The container holding level i multiplies by the fanout of the
		// level above it, so instance products reproduce spec.Instances.
		name := fmt.Sprintf("u%d", i)
		if i < spec.NumLevels()-1 && spec.Levels[i+1].Fanout > 1 {
			name = fmt.Sprintf("u%d[0..%d]", i, spec.Levels[i+1].Fanout-1)
		}
		fmt.Fprintf(b, "%ssubtree:\n", indent)
		fmt.Fprintf(b, "%s  - name: %s\n", indent, name)
		fmt.Fprintf(b, "%s    local:\n", indent)
		fmt.Fprintf(b, "%s      - name: %s\n", indent, l.Name)
		if i == spec.NumLevels()-1 {
			fmt.Fprintf(b, "%s        class: DRAM\n", indent)
		}
		fmt.Fprintf(b, "%s        attributes:\n", indent)
		if cap := formatCapacity(l.CapacityBytes); cap != "" {
			fmt.Fprintf(b, "%s          capacity: %s\n", indent, cap)
		}
		fmt.Fprintf(b, "%s          bandwidth_gbs: %s\n", indent, ftoa(l.BandwidthGBs))
		indent += "    "
	}
}

// formatCapacity mirrors arch.FormatSpec's rendering; "" means unbounded.
func formatCapacity(bytes int64) string {
	switch {
	case bytes == 0:
		return ""
	case bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes%(1<<10) == 0:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// renderProblem writes the multi-op problem: io, dimensions, per-op
// instance sizes and data-spaces with PSoP projections.
func renderProblem(b *strings.Builder, g *workload.Graph) {
	fmt.Fprintf(b, "problem:\n")
	fmt.Fprintf(b, "  name: %s\n", g.Name)
	elem := workload.WordBytes
	if len(g.Ops) > 0 {
		if t, ok := g.Tensors[g.Ops[0].Write.Tensor]; ok {
			elem = t.ElemBytes
		}
	}
	fmt.Fprintf(b, "  elem_bytes: %d\n", elem)
	fmt.Fprintf(b, "  io:\n")
	fmt.Fprintf(b, "    ins: [%s]\n", strings.Join(g.InputTensors(), ", "))
	fmt.Fprintf(b, "    outs: [%s]\n", strings.Join(g.OutputTensors(), ", "))
	all := g.AllDims()
	dims := make([]string, len(all))
	for i, d := range all {
		dims[i] = d.Name
	}
	fmt.Fprintf(b, "  dimensions: [%s]\n", strings.Join(dims, ", "))
	var dense []string
	for name, t := range g.Tensors {
		if t.Density != 0 {
			dense = append(dense, name)
		}
	}
	sort.Strings(dense)
	if len(dense) > 0 {
		fmt.Fprintf(b, "  densities:\n")
		for _, name := range dense {
			fmt.Fprintf(b, "    %s: %s\n", name, ftoa(g.Tensors[name].Density))
		}
	}
	fmt.Fprintf(b, "  ops:\n")
	for _, op := range g.Ops {
		fmt.Fprintf(b, "    - name: %s\n", op.Name)
		fmt.Fprintf(b, "      kind: %s\n", op.Kind)
		names := make([]string, len(op.Dims))
		inst := make([]string, len(op.Dims))
		for i, d := range op.Dims {
			names[i] = d.Name
			inst[i] = fmt.Sprintf("%s: %d", d.Name, d.Size)
		}
		fmt.Fprintf(b, "      dimensions: [%s]\n", strings.Join(names, ", "))
		fmt.Fprintf(b, "      instance: {%s}\n", strings.Join(inst, ", "))
		reads := make([]string, len(op.Reads))
		fmt.Fprintf(b, "      data-spaces:\n")
		for i, r := range op.Reads {
			reads[i] = r.Tensor
			fmt.Fprintf(b, "        - {name: %s, projection: %s}\n", r.Tensor, renderProjection(r.Index))
		}
		fmt.Fprintf(b, "        - {name: %s, projection: %s, read-write: true}\n", op.Write.Tensor, renderProjection(op.Write.Index))
		fmt.Fprintf(b, "      ins: [%s]\n", strings.Join(reads, ", "))
		fmt.Fprintf(b, "      out: [%s]\n", op.Write.Tensor)
	}
}

// renderProjection writes one access as a flow PSoP:
// [[[m]], [[k, 2], 1]] addresses T[m][2k+1].
func renderProjection(index []workload.Index) string {
	outer := make([]string, len(index))
	for i, ix := range index {
		terms := make([]string, 0, len(ix.Terms)+1)
		for _, t := range ix.Terms {
			if t.Coef == 1 {
				terms = append(terms, "["+t.Dim+"]")
			} else {
				terms = append(terms, fmt.Sprintf("[%s, %d]", t.Dim, t.Coef))
			}
		}
		if ix.Offset != 0 || len(ix.Terms) == 0 {
			terms = append(terms, strconv.Itoa(ix.Offset))
		}
		outer[i] = "[" + strings.Join(terms, ", ") + "]"
	}
	return "[" + strings.Join(outer, ", ") + "]"
}

// renderMapping writes the tree as nested Tile / Scope / Op nodes.
func renderMapping(b *strings.Builder, root *core.Node) {
	fmt.Fprintf(b, "mapping:\n")
	renderMapNode(b, root, "  ", false)
}

// renderMapNode writes one node. asItem starts the first line with the
// sequence dash.
func renderMapNode(b *strings.Builder, n *core.Node, indent string, asItem bool) {
	head, rest := indent, indent
	if asItem {
		head, rest = indent+"- ", indent+"  "
	}
	if n.IsLeaf() {
		fmt.Fprintf(b, "%snode-type: Op\n", head)
		fmt.Fprintf(b, "%sname: %s\n", rest, n.Op.Name)
		fmt.Fprintf(b, "%slabel: %s\n", rest, n.Name)
		if f := renderFactors(n.Loops); f != "" {
			fmt.Fprintf(b, "%sfactors: %s\n", rest, f)
		}
		return
	}
	fmt.Fprintf(b, "%snode-type: Tile\n", head)
	fmt.Fprintf(b, "%sname: %s\n", rest, n.Name)
	fmt.Fprintf(b, "%starget: %d\n", rest, n.Level)
	if f := renderFactors(n.Loops); f != "" {
		fmt.Fprintf(b, "%sfactors: %s\n", rest, f)
	}
	fmt.Fprintf(b, "%ssubtree:\n", rest)
	kidIndent := rest + "  "
	if n.Binding != core.Seq && len(n.Children) > 1 {
		fmt.Fprintf(b, "%s- node-type: Scope\n", kidIndent)
		fmt.Fprintf(b, "%s  type: %s\n", kidIndent, scopeTypeName(n.Binding))
		fmt.Fprintf(b, "%s  subtree:\n", kidIndent)
		kidIndent += "    "
	}
	for _, c := range n.Children {
		renderMapNode(b, c, kidIndent, true)
	}
}

// scopeTypeName is the inverse of scopeBindings for the canonical names.
func scopeTypeName(bind core.Binding) string {
	switch bind {
	case core.Shar:
		return "Sharing"
	case core.Para:
		return "Spatial"
	case core.Pipe:
		return "Pipeline"
	}
	return "Temporal"
}

// renderFactors writes loops as "m=4 s:n=2" items, spatial loops
// prefixed.
func renderFactors(loops []core.Loop) string {
	items := make([]string, len(loops))
	for i, l := range loops {
		prefix := ""
		if l.Kind == core.Spatial {
			prefix = "s:"
		}
		items[i] = fmt.Sprintf("%s%s=%d", prefix, l.Dim, l.Extent)
	}
	return strings.Join(items, " ")
}
