package yamlfe

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/diag"
)

// The invalid-config fixtures under testdata/cases/invalid pin the exact
// diagnostics the loader answers, one comment per expected diagnostic:
//
//	# want TF-YAML-00X L:C `message regexp`
//
// mirroring the `// want` harness of internal/lint. Comments sit at the
// end of each fixture so they never perturb the spans they pin. The
// harness is exact in both directions: every want must match a
// diagnostic, and every diagnostic must be claimed by a want.

var wantRE = regexp.MustCompile("^\\s*# want (TF-YAML-\\d{3}) (\\d+):(\\d+) `(.*)`\\s*$")

type wantDiag struct {
	code      string
	line, col int
	msg       *regexp.Regexp
}

func (w wantDiag) String() string {
	return fmt.Sprintf("want %s %d:%d `%s`", w.code, w.line, w.col, w.msg)
}

func parseWants(t *testing.T, src string) []wantDiag {
	t.Helper()
	var wants []wantDiag
	for i, line := range strings.Split(src, "\n") {
		if !strings.Contains(line, "# want ") {
			continue
		}
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed want comment %q", i+1, line)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		re, err := regexp.Compile(m[4])
		if err != nil {
			t.Fatalf("line %d: bad want regexp: %v", i+1, err)
		}
		wants = append(wants, wantDiag{code: m[1], line: ln, col: col, msg: re})
	}
	return wants
}

func (w wantDiag) matches(d diag.Diagnostic) bool {
	return string(d.Code) == w.code &&
		d.Span.Start.Line == w.line && d.Span.Start.Col == w.col &&
		w.msg.MatchString(d.Message)
}

// TestGoldenDiagnostics checks every invalid fixture against its pinned
// want comments: codes, positions, and messages must all line up.
func TestGoldenDiagnostics(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "cases", "invalid", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no invalid fixtures under testdata/cases/invalid")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			wants := parseWants(t, src)
			if len(wants) == 0 {
				t.Fatal("fixture has no want comments")
			}

			cfg, diags := Load(src)
			if (cfg == nil) != diags.HasErrors() {
				t.Errorf("cfg==nil is %v but HasErrors is %v", cfg == nil, diags.HasErrors())
			}

			claimed := make([]bool, len(diags))
			for _, w := range wants {
				hit := false
				for i, d := range diags {
					if w.matches(d) {
						claimed[i] = true
						hit = true
					}
				}
				if !hit {
					t.Errorf("unmatched %s", w)
				}
			}
			for i, d := range diags {
				if !claimed[i] {
					t.Errorf("unclaimed diagnostic: %s", d.String())
				}
			}
		})
	}
}
