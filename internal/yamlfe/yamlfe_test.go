package yamlfe

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/workload"
)

// matmulChain is a 2-op fused matmul chain: S = A×B, C = S×D.
func matmulChain(t *testing.T) *workload.Graph {
	t.Helper()
	op1 := &workload.Operator{
		Name: "mm1", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "m", Size: 64}, {Name: "k", Size: 64}, {Name: "l", Size: 64}},
		Reads: []workload.Access{
			{Tensor: "A", Index: []workload.Index{workload.I("m"), workload.I("k")}},
			{Tensor: "B", Index: []workload.Index{workload.I("k"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "S", Index: []workload.Index{workload.I("m"), workload.I("l")}},
	}
	op2 := &workload.Operator{
		Name: "mm2", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "m", Size: 64}, {Name: "l", Size: 64}, {Name: "n", Size: 64}},
		Reads: []workload.Access{
			{Tensor: "S", Index: []workload.Index{workload.I("m"), workload.I("l")}},
			{Tensor: "D", Index: []workload.Index{workload.I("l"), workload.I("n")}},
		},
		Write: workload.Access{Tensor: "C", Index: []workload.Index{workload.I("m"), workload.I("n")}},
	}
	g, err := workload.NewGraph("mmchain", workload.WordBytes, op1, op2)
	if err != nil {
		t.Fatalf("matmulChain: %v", err)
	}
	return g
}

// testTree builds a small fused tree over the matmul-chain graph.
func testTree(g *workload.Graph) *core.Node {
	op1, op2 := g.Ops[0], g.Ops[1]
	l1 := core.Leaf("t_"+op1.Name, op1, core.S("m", 4), core.T("k", 8))
	l2 := core.Leaf("t_"+op2.Name, op2, core.S("m", 4), core.T("n", 8))
	fuse := core.Tile("fuse0", 1, core.Pipe, []core.Loop{core.T("m", 16)}, l1, l2)
	return core.Tile("root", 2, core.Seq, []core.Loop{core.T("m", 8)}, fuse)
}

func mustLoad(t *testing.T, src string) *Config {
	t.Helper()
	cfg, diags := Load(src)
	if cfg == nil {
		t.Fatalf("Load failed:\n%s\nsource:\n%s", diags, numbered(src))
	}
	return cfg
}

func numbered(src string) string {
	var b strings.Builder
	for i, line := range strings.Split(src, "\n") {
		b.WriteString(strings.TrimRight(strings.Repeat(" ", 0)+itoa(i+1)+": "+line, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestRenderLoadRoundTrip checks that Load(Render(point)) reconstructs
// the spec, graph and tree exactly, across the built-in accelerators and
// a fused workload.
func TestRenderLoadRoundTrip(t *testing.T) {
	specs := []*arch.Spec{arch.Edge(), arch.Cloud(), arch.Validation(), arch.A100Like()}
	for _, spec := range specs {
		g := matmulChain(t)
		root := testTree(g)
		src := Render(spec, g, root)
		cfg := mustLoad(t, src)
		if got, want := arch.FormatSpec(cfg.Spec), arch.FormatSpec(spec); got != want {
			t.Errorf("%s: spec mismatch\ngot:\n%s\nwant:\n%s", spec.Name, got, want)
		}
		if got, want := workload.CanonicalGraph(cfg.Graph), workload.CanonicalGraph(g); got != want {
			t.Errorf("%s: graph mismatch\ngot:\n%s\nwant:\n%s", spec.Name, got, want)
		}
		if got, want := notation.Print(cfg.Root), notation.Print(root); got != want {
			t.Errorf("%s: tree mismatch\ngot:\n%s\nwant:\n%s", spec.Name, got, want)
		}
		if cfg.Root.Binding != core.Seq || cfg.Root.Children[0].Binding != core.Pipe {
			t.Errorf("%s: bindings not preserved: root=%s fuse=%s", spec.Name, cfg.Root.Binding, cfg.Root.Children[0].Binding)
		}
		// Fixpoint: rendering the loaded config reproduces the bytes.
		if again := Render(cfg.Spec, cfg.Graph, cfg.Root); again != src {
			t.Errorf("%s: render not a fixpoint\nfirst:\n%s\nsecond:\n%s", spec.Name, src, again)
		}
	}
}

// TestLoadHandWritten exercises the Timeloop-flavored spellings the
// renderer does not emit: depth/block-size/word-bits capacities,
// read_bandwidth, level names as targets, permutation, a derived mesh,
// and scalar name lists.
func TestLoadHandWritten(t *testing.T) {
	src := `
# A 2-level toy accelerator over a single matmul.
architecture:
  name: toy
  attributes:
    freq_ghz: 1
    word_bits: 16
  subtree:
    - name: system
      local:
        - name: DRAM
          class: DRAM
          attributes: {bandwidth_gbs: 60}
      subtree:
        - name: pe[0..15]
          local:
            - name: Reg
              attributes:
                depth: 64
                block-size: 4
                word-bits: 16
            - name: MAC
              class: intmac
problem:
  name: toymm
  dimensions: m k n
  instance: {m: 64, k: 64, n: 64}
  ops:
    - name: mm
      dimensions: [m, k, n]
      data-spaces:
        - name: A
          projection: [[[m]], [[k]]]
        - name: B
          projection: [[[k]], [[n]]]
        - name: C
          projection: [[[m]], [[n]]]
          read-write: true
      ins: A B
      out: C
mapping:
  node-type: Tile
  target: DRAM
  type: temporal
  factors: m=16 n=16
  permutation: [n, m]
  subtree:
    - node-type: Op
      name: mm
      factors: s:m=4 s:n=4 k=64
`
	cfg := mustLoad(t, src)
	if cfg.Spec.Name != "toy" || cfg.Spec.NumLevels() != 2 {
		t.Fatalf("spec: got %s with %d levels", cfg.Spec.Name, cfg.Spec.NumLevels())
	}
	if got := cfg.Spec.Levels[0].CapacityBytes; got != 64*4*2 {
		t.Errorf("Reg capacity: got %d, want %d", got, 64*4*2)
	}
	if cfg.Spec.MeshX*cfg.Spec.MeshY != 16 {
		t.Errorf("mesh: got %dx%d, want product 16", cfg.Spec.MeshX, cfg.Spec.MeshY)
	}
	if cfg.Spec.LevelIndex("DRAM") != 1 {
		t.Errorf("DRAM not outermost")
	}
	if len(cfg.Graph.Ops) != 1 || cfg.Graph.Ops[0].Name != "mm" {
		t.Fatalf("graph: %v", cfg.Graph)
	}
	root := cfg.Root
	if root.Level != 1 {
		t.Errorf("root target: got level %d, want 1", root.Level)
	}
	if len(root.Loops) != 2 || root.Loops[0].Dim != "n" || root.Loops[1].Dim != "m" {
		t.Errorf("permutation not applied: %v", root.Loops)
	}
	leaf := root.Children[0]
	if !leaf.IsLeaf() || leaf.Name != "t_mm" {
		t.Fatalf("leaf: %v", leaf)
	}
	if leaf.SpatialProduct() != 16 {
		t.Errorf("leaf spatial product: got %d, want 16", leaf.SpatialProduct())
	}
}

// TestLoadErrors pins a few coded failures end to end.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		code string
	}{
		{"empty", "", "TF-YAML-003"},
		{"tab", "\tarchitecture: x", "TF-YAML-001"},
		{"scalar-top", "just a scalar", "TF-YAML-002"},
		{"dup-key", "architecture: a\narchitecture: b", "TF-YAML-006"},
		// A nested sequence item starts mid-line after the outer dash; the
		// parser once looped forever on this shape (found by FuzzAnalyze).
		{"nested-sequence", "architecture:\n  subtree:\n    - - e: \n", "TF-YAML-003"},
	}
	for _, tc := range cases {
		cfg, diags := Load(tc.src)
		if cfg != nil {
			t.Errorf("%s: Load unexpectedly succeeded", tc.name)
			continue
		}
		found := false
		for _, d := range diags {
			if string(d.Code) == tc.code {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want code %s, got:\n%s", tc.name, tc.code, diags)
		}
	}
}
